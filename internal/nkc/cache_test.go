package nkc

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/stateful"
)

// TestProgramCompilerHitMissAccounting: compiling the same state twice is
// a whole-table hit; compiling a sibling state re-enters ToFDD only for
// segments whose guards flipped.
func TestProgramCompilerHitMissAccounting(t *testing.T) {
	a := apps.Firewall()
	pc, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	s0 := stateful.State{0}
	s1 := stateful.State{1}

	if _, err := pc.Compile(s0); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.TableMisses != 1 || st.TableHits != 0 {
		t.Fatalf("first compile: %+v", st)
	}
	// The first compile does real segment work; structurally repeated
	// segments (the identity segments around links, the shared pt<-2
	// suffix) may already hit, since the memo key is the segment's
	// canonical rendering, not its strand position.
	if st.SegmentMisses == 0 {
		t.Fatalf("first compile touched no segments: %+v", st)
	}

	if _, err := pc.Compile(s0); err != nil {
		t.Fatal(err)
	}
	st2 := pc.Stats()
	if st2.TableHits != 1 || st2.TableMisses != 1 {
		t.Fatalf("recompile of same state not a table hit: %+v", st2)
	}
	if st2.SegmentMisses != st.SegmentMisses {
		t.Fatal("table hit re-entered segment translation")
	}

	if _, err := pc.Compile(s1); err != nil {
		t.Fatal(err)
	}
	st3 := pc.Stats()
	if st3.TableMisses != 2 {
		t.Fatalf("sibling state should miss the table cache: %+v", st3)
	}
	if st3.SegmentHits == 0 {
		t.Fatalf("sibling state reused no segments: %+v", st3)
	}
	// The firewall's guards (state=0, state=1 under negation) both flip
	// between the two states, but guard-free segments (the incoming-path
	// prefix, the port rewrites) must not retranslate. At least as many
	// hits as misses is a conservative floor.
	if st3.SegmentHits < st3.SegmentMisses-st.SegmentMisses {
		t.Fatalf("delta compile retranslated more than it reused: %+v", st3)
	}
}

// TestSharedCacheAcrossCompilers: a second compiler attached to the same
// SharedCache gets whole-table hits for states the first already
// compiled, and the shared tables are the same instance.
func TestSharedCacheAcrossCompilers(t *testing.T) {
	a := apps.IDS()
	sc := NewSharedCache()
	pc1, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	pc2, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range states {
		t1, err := pc1.Compile(k)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := pc2.Compile(k)
		if err != nil {
			t.Fatal(err)
		}
		for sw, tbl := range t1 {
			if t2[sw] != tbl {
				t.Fatalf("state %v switch %d: shared cache returned distinct table instances", k, sw)
			}
		}
	}
	if st := pc2.Stats(); st.TableHits != int64(len(states)) || st.TableMisses != 0 {
		t.Fatalf("second compiler should only hit: %+v", st)
	}
	if sc.Len() != len(states) {
		t.Fatalf("shared cache holds %d configs for %d states", sc.Len(), len(states))
	}
}

// TestCacheGrowthBound: the caches are eviction-free, so their only
// soundness risk is unbounded growth. Growth is bounded by the program's
// structural variety, not by the number of states compiled: on
// bandwidth-cap the segment memo, the strand cache, and the node store
// all stop growing after the first few states, and recompiling every
// state adds nothing.
func TestCacheGrowthBound(t *testing.T) {
	const cap = 40
	a := apps.BandwidthCap(cap)
	pc, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	states, _, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	var sizes []CacheStats
	for _, k := range states {
		if _, err := pc.Compile(k); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, pc.Stats())
	}
	// Growth is bounded by the program's structural variety — the
	// interior counter shape plus the two boundary shapes (initial and
	// cap-exhausted) — so the strand cache and node store sizes are small
	// constants independent of the cap, not O(states).
	last := sizes[len(sizes)-1]
	if last.Strands > 8 {
		t.Fatalf("strand cache grew with the state count: %d entries for %d states", last.Strands, len(states))
	}
	if last.FDDNodes > 64 {
		t.Fatalf("node store grew with the state count: %d nodes for %d states", last.FDDNodes, len(states))
	}
	// And the interior is fully shared: between the second state and the
	// second-to-last (all interior counter states) nothing new appears.
	if interiorBase, interiorLast := sizes[2], sizes[len(sizes)-2]; interiorLast.Strands != interiorBase.Strands ||
		interiorLast.FDDNodes != interiorBase.FDDNodes {
		t.Fatalf("interior states grew the caches: %+v -> %+v", interiorBase, interiorLast)
	}
	// Segment misses grow at most linearly with one new guard-sig per
	// state (each state flips one counter guard), never with the product
	// of states and segments.
	perState := float64(last.SegmentMisses) / float64(len(states))
	if perState > 4 {
		t.Fatalf("segment misses per state = %.1f; delta compilation is not incremental", perState)
	}
	// Recompiling everything is pure hits.
	before := pc.Stats()
	for _, k := range states {
		if _, err := pc.Compile(k); err != nil {
			t.Fatal(err)
		}
	}
	after := pc.Stats()
	if after.SegmentMisses != before.SegmentMisses || after.TableMisses != before.TableMisses ||
		after.Strands != before.Strands || after.FDDNodes != before.FDDNodes {
		t.Fatalf("recompilation grew a cache: before %+v after %+v", before, after)
	}
	if after.TableHits != before.TableHits+int64(len(states)) {
		t.Fatalf("recompilation was not all table hits: before %+v after %+v", before, after)
	}
}

// TestForkSharesSkeletonNotContext: a forked compiler produces identical
// tables while keeping its own context, and merged stats deduplicate the
// store sizes.
func TestForkSharesSkeletonNotContext(t *testing.T) {
	a := apps.BandwidthCap(5)
	sc := NewSharedCache()
	pc, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	fk := pc.Fork()
	states, _, err := a.Prog.ReachableStates()
	if err != nil {
		t.Fatal(err)
	}
	// Interleave compiles across the original and the fork; the shared
	// cache must keep them byte-identical.
	for i, k := range states {
		var t1, t2 interface{ String() string }
		if i%2 == 0 {
			x, err := pc.Compile(k)
			if err != nil {
				t.Fatal(err)
			}
			y, err := fk.Compile(k)
			if err != nil {
				t.Fatal(err)
			}
			t1, t2 = x, y
		} else {
			x, err := fk.Compile(k)
			if err != nil {
				t.Fatal(err)
			}
			y, err := pc.Compile(k)
			if err != nil {
				t.Fatal(err)
			}
			t1, t2 = x, y
		}
		if t1.String() != t2.String() {
			t.Fatalf("state %v: fork and original disagree", k)
		}
	}
	// Merging both workers' stats must not double-count store sizes.
	merged := pc.Stats()
	merged.Add(fk.Stats())
	if merged.Strands != maxI64(pc.Stats().Strands, fk.Stats().Strands) {
		t.Fatalf("strand stores not merged by max: %d", merged.Strands)
	}
	if merged.FDDNodes != maxI64(pc.Stats().FDDNodes, fk.Stats().FDDNodes) {
		t.Fatalf("node stores not merged by max: %d", merged.FDDNodes)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
