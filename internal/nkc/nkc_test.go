package nkc

import (
	"math/rand"
	"testing"

	"eventnet/internal/netkat"
	"eventnet/internal/topo"
)

func lp(sw, pt int, fields map[string]int) netkat.LocatedPacket {
	p := netkat.Packet{}
	for k, v := range fields {
		p[k] = v
	}
	return netkat.LocatedPacket{Pkt: p, Loc: netkat.Location{Switch: sw, Port: pt}}
}

func randPred(r *rand.Rand, depth int) netkat.Pred {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return netkat.True{}
		case 1:
			return netkat.False{}
		default:
			return netkat.Test{Field: []string{"a", "b", netkat.FieldPt}[r.Intn(3)], Value: r.Intn(3)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return netkat.Not{P: randPred(r, depth-1)}
	case 1:
		return netkat.And{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	default:
		return netkat.Or{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	}
}

func randLinkFree(r *rand.Rand, depth int) netkat.Policy {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return netkat.Filter{P: randPred(r, 1)}
		case 1:
			return netkat.Assign{Field: []string{"a", "b", netkat.FieldPt}[r.Intn(3)], Value: r.Intn(3)}
		default:
			return netkat.ID()
		}
	}
	switch r.Intn(4) {
	case 0:
		return netkat.Union{L: randLinkFree(r, depth-1), R: randLinkFree(r, depth-1)}
	case 1:
		return netkat.Seq{L: randLinkFree(r, depth-1), R: randLinkFree(r, depth-1)}
	case 2:
		return netkat.Star{P: randLinkFree(r, depth-2)}
	default:
		return netkat.Filter{P: randPred(r, depth-1)}
	}
}

func randLP(r *rand.Rand) netkat.LocatedPacket {
	return lp(r.Intn(3), r.Intn(3), map[string]int{"a": r.Intn(3), "b": r.Intn(3)})
}

// TestDNFEquivalence: the DNF of a predicate holds exactly when the
// predicate holds.
func TestDNFEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		p := randPred(r, 4)
		x := randLP(r)
		want := p.Eval(x)
		got := false
		for _, c := range DNF(p) {
			if c.Eval(x) {
				got = true
				break
			}
		}
		if got != want {
			t.Fatalf("DNF mismatch for %v on %v: dnf=%v pred=%v", p, x, got, want)
		}
	}
}

// TestPathSetEquivalence: path normal form is pointwise equal to the
// reference evaluator on link-free policies.
func TestPathSetEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := randLinkFree(r, 3)
		ps, err := FromPolicy(p)
		if err != nil {
			t.Fatalf("FromPolicy(%v): %v", p, err)
		}
		x := randLP(r)
		want := netkat.Eval(p, x)
		got := ps.Eval(x)
		if len(want) != len(got) {
			t.Fatalf("size mismatch for %v on %v: got %v want %v", p, x, got, want)
		}
		for j := range want {
			if !want[j].Equal(got[j]) {
				t.Fatalf("mismatch for %v on %v: got %v want %v", p, x, got, want)
			}
		}
	}
}

func TestFromPolicyRejectsLink(t *testing.T) {
	_, err := FromPolicy(netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}})
	if err == nil {
		t.Fatal("link accepted in link-free context")
	}
}

func TestExtractStrandsShape(t *testing.T) {
	l1 := netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}
	l2 := netkat.Link{Src: netkat.Location{Switch: 4, Port: 3}, Dst: netkat.Location{Switch: 2, Port: 1}}
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.Test{Field: "dst", Value: 9}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		netkat.Union{L: l1, R: l2},
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	strands, err := ExtractStrands(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(strands) != 2 {
		t.Fatalf("got %d strands, want 2", len(strands))
	}
	for _, s := range strands {
		if len(s.Links) != 1 || len(s.Segments) != 2 {
			t.Fatalf("strand shape: %d links, %d segments", len(s.Links), len(s.Segments))
		}
	}
}

func TestExtractStrandsRejectsStarOverLinks(t *testing.T) {
	l := netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}
	if _, err := ExtractStrands(netkat.Star{P: l}); err == nil {
		t.Fatal("star over link accepted")
	}
}

// firewallPolicy is configuration C[1] of the paper's stateful firewall:
// both directions enabled. H1=101, H4=104.
func firewallPolicy() netkat.Policy {
	link14 := netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}
	link41 := netkat.Link{Src: netkat.Location{Switch: 4, Port: 1}, Dst: netkat.Location{Switch: 1, Port: 1}}
	out := netkat.SeqAll(
		netkat.Filter{P: netkat.And{L: netkat.Test{Field: netkat.FieldPt, Value: 2}, R: netkat.Test{Field: "dst", Value: 104}}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		link14,
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	back := netkat.SeqAll(
		netkat.Filter{P: netkat.And{L: netkat.Test{Field: netkat.FieldPt, Value: 2}, R: netkat.Test{Field: "dst", Value: 101}}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		link41,
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	return netkat.Union{L: out, R: back}
}

func TestCompileFirewall(t *testing.T) {
	tp := topo.Firewall()
	tables, err := Compile(firewallPolicy(), tp)
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1: packet from H1 (dst=H4) arrives at 1:2, must go out port 1.
	outs := tables.Get(1).Process(netkat.Packet{"dst": 104}, 2, 0)
	if len(outs) != 1 || outs[0].Port != 1 {
		t.Fatalf("s1 hop: %v", outs)
	}
	// Hop 2: arrives at 4:1, must go out port 2 (to H4).
	outs = tables.Get(4).Process(netkat.Packet{"dst": 104}, 1, 0)
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("s4 hop: %v", outs)
	}
	// Reverse direction.
	outs = tables.Get(4).Process(netkat.Packet{"dst": 101}, 2, 0)
	if len(outs) != 1 || outs[0].Port != 1 {
		t.Fatalf("s4 reverse hop: %v", outs)
	}
	outs = tables.Get(1).Process(netkat.Packet{"dst": 101}, 1, 0)
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("s1 reverse hop: %v", outs)
	}
	// A packet to an unknown destination is dropped.
	if outs = tables.Get(1).Process(netkat.Packet{"dst": 99}, 2, 0); outs != nil {
		t.Fatalf("unknown dst forwarded: %v", outs)
	}
}

// TestCompileEndToEnd drives the compiled configuration relation from the
// host and checks the packet reaches the destination host.
func TestCompileEndToEnd(t *testing.T) {
	tp := topo.Firewall()
	tables, err := Compile(firewallPolicy(), tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &CompiledConfig{Tables: tables, Topo: tp}
	h1, _ := tp.HostByName("H1")
	h4, _ := tp.HostByName("H4")
	cur := []netkat.DPacket{{Pkt: netkat.Packet{"dst": 104}, Loc: h1.Loc(), Out: true}}
	reached := map[netkat.Location]bool{}
	for step := 0; step < 10 && len(cur) > 0; step++ {
		var next []netkat.DPacket
		for _, x := range cur {
			reached[x.Loc] = true
			next = append(next, cfg.DStep(x)...)
		}
		cur = next
	}
	if !reached[h4.Loc()] {
		t.Fatalf("packet never reached H4; visited %v", reached)
	}
}

// TestDStepDroppedPacketIsMaximal: a packet the tables drop has no
// C-successor at its ingress point (the property the oracle's completeness
// check relies on).
func TestDStepDroppedPacketIsMaximal(t *testing.T) {
	tp := topo.Firewall()
	tables, err := Compile(firewallPolicy(), tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &CompiledConfig{Tables: tables, Topo: tp}
	// dst=99 matches no rule: ingress at 4:2 must be terminal.
	outs := cfg.DStep(netkat.DPacket{Pkt: netkat.Packet{"dst": 99}, Loc: netkat.Location{Switch: 4, Port: 2}})
	if len(outs) != 0 {
		t.Fatalf("dropped packet has successors: %v", outs)
	}
}

// TestCompileMulticastMerge checks that two strands sharing a match merge
// into one multicast rule (the learning-switch flood).
func TestCompileMulticastMerge(t *testing.T) {
	tp := topo.LearningSwitch()
	// From s4 ingress port 2: dst=H1 floods to both port 1 and port 3.
	l41 := netkat.Link{Src: netkat.Location{Switch: 4, Port: 1}, Dst: netkat.Location{Switch: 1, Port: 1}}
	l43 := netkat.Link{Src: netkat.Location{Switch: 4, Port: 3}, Dst: netkat.Location{Switch: 2, Port: 1}}
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.And{L: netkat.Test{Field: netkat.FieldPt, Value: 2}, R: netkat.Test{Field: "dst", Value: 101}}},
		netkat.Union{
			L: netkat.SeqAll(netkat.Assign{Field: netkat.FieldPt, Value: 1}, l41),
			R: netkat.SeqAll(netkat.Assign{Field: netkat.FieldPt, Value: 3}, l43),
		},
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	outs := tables.Get(4).Process(netkat.Packet{"dst": 101}, 2, 0)
	if len(outs) != 2 {
		t.Fatalf("flood produced %d outputs, want 2: %v\n%v", len(outs), outs, tables)
	}
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.Port] = true
	}
	if !ports[1] || !ports[3] {
		t.Fatalf("flood ports: %v", ports)
	}
}

// TestCompileOverlapResolution: a broad rule and a narrow rule with
// different outputs must both apply to packets in the narrow region.
func TestCompileOverlapResolution(t *testing.T) {
	tp := topo.New()
	tp.AddSwitch(1)
	p := netkat.Union{
		L: netkat.SeqAll(netkat.Filter{P: netkat.Test{Field: netkat.FieldSw, Value: 1}}, netkat.Filter{P: netkat.Test{Field: netkat.FieldPt, Value: 2}}, netkat.Assign{Field: netkat.FieldPt, Value: 1}),
		R: netkat.SeqAll(netkat.Filter{P: netkat.Test{Field: netkat.FieldSw, Value: 1}}, netkat.Filter{P: netkat.And{L: netkat.Test{Field: netkat.FieldPt, Value: 2}, R: netkat.Test{Field: "dst", Value: 7}}}, netkat.Assign{Field: netkat.FieldPt, Value: 3}),
	}
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	// dst=7 packets must be emitted on both ports 1 and 3.
	outs := tables.Get(1).Process(netkat.Packet{"dst": 7}, 2, 0)
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.Port] = true
	}
	if !ports[1] || !ports[3] {
		t.Fatalf("overlap outputs: %v (tables:\n%v)", outs, tables)
	}
	// Other packets only on port 1.
	outs = tables.Get(1).Process(netkat.Packet{"dst": 8}, 2, 0)
	if len(outs) != 1 || outs[0].Port != 1 {
		t.Fatalf("broad-only outputs: %v", outs)
	}
}

// TestCompileFieldRewrite checks that field rewrites travel with the
// packet across hops and that later tests see rewritten values.
func TestCompileFieldRewrite(t *testing.T) {
	tp := topo.Firewall()
	l := netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.Test{Field: netkat.FieldPt, Value: 2}},
		netkat.Assign{Field: "tos", Value: 5},
		l,
		netkat.Filter{P: netkat.Test{Field: "tos", Value: 5}}, // statically true after rewrite
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	// pt<-? : hop 0 has no pt assignment, so ingress must be at the link's
	// source port 1 — wait, ingress is pt=2 and link needs pt=1; that's
	// infeasible unless pt is assigned. Assign pt first.
	p = netkat.SeqAll(
		netkat.Filter{P: netkat.Test{Field: netkat.FieldPt, Value: 2}},
		netkat.Assign{Field: "tos", Value: 5},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		l,
		netkat.Filter{P: netkat.Test{Field: "tos", Value: 5}},
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	outs := tables.Get(1).Process(netkat.Packet{"dst": 104}, 2, 0)
	if len(outs) != 1 || outs[0].Pkt["tos"] != 5 {
		t.Fatalf("s1 rewrite: %v", outs)
	}
	// The static test tos=5 must not appear as a runtime match at s4 (it
	// was resolved against the rewrite), and the hop must forward.
	outs = tables.Get(4).Process(netkat.Packet{"dst": 104, "tos": 5}, 1, 0)
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("s4 hop: %v", outs)
	}
}

// TestCompileInfeasibleStaticTest: a test contradicting an earlier rewrite
// kills the strand.
func TestCompileInfeasibleStaticTest(t *testing.T) {
	tp := topo.Firewall()
	l := netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}}
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.Test{Field: netkat.FieldPt, Value: 2}},
		netkat.Assign{Field: "tos", Value: 5},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		l,
		netkat.Filter{P: netkat.Test{Field: "tos", Value: 6}}, // statically false
		netkat.Assign{Field: netkat.FieldPt, Value: 2},
	)
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	if n := tables.TotalRules(); n != 0 {
		t.Fatalf("infeasible strand produced %d rules:\n%v", n, tables)
	}
}

func TestVersionGuardString(t *testing.T) {
	// Spot-check the guard rendering used in Section 5.3 examples.
	tp := topo.Firewall()
	_ = tp
}

// TestCompileIdentityTail: a strand ending right after a link (the ring's
// signal strand) must not emit a hairpin rule at the destination switch.
// Regression test: the auto-recorded ingress port of the final hop used to
// defeat the identity-tail detection, producing a spurious
// [in=m -> out(m)] rule.
func TestCompileIdentityTail(t *testing.T) {
	tp := topo.Firewall()
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.Test{Field: "sig", Value: 1}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 4, Port: 1}},
	)
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	if n := tables.Get(4).Len(); n != 0 {
		t.Fatalf("identity tail emitted %d rules at the destination switch:\n%v", n, tables)
	}
	if n := tables.Get(1).Len(); n != 1 {
		t.Fatalf("source switch rules: %d", n)
	}
}

// TestCompileEndToEndMultiHop cross-checks compiled tables against the
// reference evaluator on complete journeys for the ring configurations:
// for each state, a packet injected at a host must reach exactly the
// locations netkat.Eval predicts, with no spurious copies.
func TestCompileEndToEndMultiHop(t *testing.T) {
	tp := topo.Ring(2)
	// Clockwise H1 -> H2 for diameter 2 (state 0 of the ring app).
	p := netkat.SeqAll(
		netkat.Filter{P: netkat.And{L: netkat.Test{Field: netkat.FieldPt, Value: 3}, R: netkat.Test{Field: "dst", Value: 102}}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		netkat.Link{Src: netkat.Location{Switch: 1, Port: 1}, Dst: netkat.Location{Switch: 2, Port: 2}},
		netkat.Assign{Field: netkat.FieldPt, Value: 1},
		netkat.Link{Src: netkat.Location{Switch: 2, Port: 1}, Dst: netkat.Location{Switch: 3, Port: 2}},
		netkat.Assign{Field: netkat.FieldPt, Value: 3},
	)
	tables, err := Compile(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &CompiledConfig{Tables: tables, Topo: tp}
	h1, _ := tp.HostByName("H1")
	// Drive the relation exhaustively and count every visited point; the
	// packet must traverse exactly one path with no duplication.
	cur := []netkat.DPacket{{Pkt: netkat.Packet{"dst": 102}, Loc: h1.Loc(), Out: true}}
	visits := 0
	var last netkat.DPacket
	for len(cur) > 0 {
		if len(cur) != 1 {
			t.Fatalf("packet duplicated: %v", cur)
		}
		last = cur[0]
		visits++
		if visits > 20 {
			t.Fatal("journey did not terminate")
		}
		cur = cfg.DStep(cur[0])
	}
	h2, _ := tp.HostByName("H2")
	if last.Loc != h2.Loc() {
		t.Fatalf("journey ended at %v, want %v", last.Loc, h2.Loc())
	}
	// Host-out, 3 switch in/out pairs, host-in = 8 points.
	if visits != 8 {
		t.Fatalf("journey length %d, want 8", visits)
	}
}
