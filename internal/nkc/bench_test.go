package nkc

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
)

// BenchmarkCompileFirewallConfig measures one static-configuration
// compile (policy -> per-switch tables) on the default (FDD) backend.
func BenchmarkCompileFirewallConfig(b *testing.B) {
	a := apps.Firewall()
	pol := stateful.Project(a.Prog.Cmd, stateful.State{1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pol, a.Topo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileRingConfig measures a longer-path compile (8 hops).
func BenchmarkCompileRingConfig(b *testing.B) {
	a := apps.Ring(8)
	pol := stateful.Project(a.Prog.Cmd, stateful.State{0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pol, a.Topo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBackends compares the FDD and DNF backends on the
// per-state configurations of each application, compiled through a
// shared Compiler as ets.Build does.
func BenchmarkCompileBackends(b *testing.B) {
	for _, backend := range []Backend{BackendFDD, BackendDNF} {
		backend := backend
		for _, a := range apps.All() {
			a := a
			b.Run(backend.String()+"/"+a.Name, func(b *testing.B) {
				states, _, err := a.Prog.ReachableStates()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					comp := NewCompilerWith(backend)
					for _, k := range states {
						pol := stateful.Project(a.Prog.Cmd, k)
						if _, err := comp.Compile(pol, a.Topo); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkTableLookup measures one flow-table lookup on the compiled
// firewall.
func BenchmarkTableLookup(b *testing.B) {
	a := apps.Firewall()
	pol := stateful.Project(a.Prog.Cmd, stateful.State{1})
	tables, err := Compile(pol, a.Topo)
	if err != nil {
		b.Fatal(err)
	}
	tbl := tables.Get(4)
	pkt := netkat.Packet{"dst": 101}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Process(pkt, 2, 0)
	}
}

// BenchmarkEquivalent measures the exact equivalence decision procedure
// on a distributivity instance.
func BenchmarkEquivalent(b *testing.B) {
	asn := netkat.Assign{Field: "x", Value: 2}
	p1 := netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}
	p2 := netkat.Filter{P: netkat.Test{Field: "y", Value: 2}}
	l := netkat.Seq{L: asn, R: netkat.Union{L: p1, R: p2}}
	r := netkat.Union{L: netkat.Seq{L: asn, R: p1}, R: netkat.Seq{L: asn, R: p2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eq, _, err := Equivalent(l, r)
		if err != nil || !eq {
			b.Fatal(eq, err)
		}
	}
}

// BenchmarkDNF measures predicate normalization on a nested formula.
func BenchmarkDNF(b *testing.B) {
	p := netkat.Not{P: netkat.And{
		L: netkat.Or{L: netkat.Test{Field: "a", Value: 1}, R: netkat.Test{Field: "b", Value: 2}},
		R: netkat.Not{P: netkat.Or{L: netkat.Test{Field: "c", Value: 3}, R: netkat.Test{Field: "a", Value: 2}}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DNF(p)
	}
}
