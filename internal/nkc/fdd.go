package nkc

// Forwarding decision diagrams (FDDs): the default compiler backend.
//
// An FDD is a binary decision diagram whose internal nodes test one
// (field, value) equality and whose leaves hold sets of actions
// (simultaneous field assignments). Every test examines the *input*
// packet; the actions of the reached leaf are applied at the end, each
// emitting one output copy — so an FDD denotes exactly the same
// packet-set function as a link-free NetKAT policy.
//
// Nodes are hash-consed: structurally equal diagrams are the same
// pointer, so semantic equality of subterms is pointer equality, and the
// union/sequence/star combinators memoize on node identity. Tests along
// every root-leaf path are strictly ordered by the global field order
// (testLess): "pt" first, then "sw", then header fields alphabetically,
// with ascending values within a field; a hi (equal) branch never
// re-tests its field. This canonical form is what makes the combinators
// near-linear in practice where the DNF/strand pipeline is exponential.
// See docs/ARCHITECTURE.md for the backend comparison.

import (
	"fmt"
	"sort"
	"strings"

	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
)

// fieldRank gives the coarse field order: the location pseudo-fields come
// first so table extraction finds ingress-port tests at the root.
func fieldRank(f string) int {
	switch f {
	case netkat.FieldPt:
		return 0
	case netkat.FieldSw:
		return 1
	default:
		return 2
	}
}

// testLess is the global total order on (field, value) tests.
func testLess(f1 string, v1 int, f2 string, v2 int) bool {
	r1, r2 := fieldRank(f1), fieldRank(f2)
	if r1 != r2 {
		return r1 < r2
	}
	if f1 != f2 {
		return f1 < f2
	}
	return v1 < v2
}

// Action is an interned simultaneous assignment of constants to fields
// (the paper's "complete test/assignment" atoms, restricted to the fields
// actually written). The empty Action is the identity. Actions are
// interned per context under a packed binary (fieldID, value) key, so
// the dense id is a sound identity everywhere a rendered string used to
// be.
type Action struct {
	id     int
	sets   map[string]int
	fields []string // sorted; cached at intern time
}

// Get returns the value the action assigns to f, if any.
func (a *Action) Get(f string) (int, bool) {
	v, ok := a.sets[f]
	return v, ok
}

// Fields returns the assigned fields in sorted order.
func (a *Action) Fields() []string {
	return append([]string{}, a.fields...)
}

// Sets returns a copy of the assignment map.
func (a *Action) Sets() map[string]int {
	m := make(map[string]int, len(a.sets))
	for f, v := range a.sets {
		m[f] = v
	}
	return m
}

// String renders the action; the identity prints as "id".
func (a *Action) String() string {
	if len(a.sets) == 0 {
		return "id"
	}
	var parts []string
	for _, f := range a.Fields() {
		parts = append(parts, fmt.Sprintf("%s<-%d", f, a.sets[f]))
	}
	return strings.Join(parts, ",")
}

// FDD is one hash-consed diagram node: either an internal (field = value)
// test with hi/lo children, or a leaf carrying a canonical action set.
// FDDs are immutable and must only be combined through the FDDCtx that
// created them.
type FDD struct {
	id     int
	leaf   bool
	field  string
	value  int
	hi, lo *FDD
	acts   []*Action // leaf payload, sorted by action key, deduplicated
}

// Leaf reports whether the node is a leaf.
func (d *FDD) Leaf() bool { return d.leaf }

// Actions returns a leaf's action set (nil for internal nodes).
func (d *FDD) Actions() []*Action { return d.acts }

// isDropLeaf reports whether d is the empty (drop-everything) leaf.
func (d *FDD) isDropLeaf() bool { return d.leaf && len(d.acts) == 0 }

// Size returns the number of distinct nodes reachable from d.
func (d *FDD) Size() int {
	seen := map[int]bool{}
	var walk func(n *FDD)
	walk = func(n *FDD) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		if !n.leaf {
			walk(n.hi)
			walk(n.lo)
		}
	}
	walk(d)
	return len(seen)
}

// String renders the diagram as nested if-expressions (for debugging).
func (d *FDD) String() string {
	var b strings.Builder
	var walk func(n *FDD)
	walk = func(n *FDD) {
		if n.leaf {
			var parts []string
			for _, a := range n.acts {
				parts = append(parts, a.String())
			}
			fmt.Fprintf(&b, "{%s}", strings.Join(parts, " + "))
			return
		}
		fmt.Fprintf(&b, "(%s=%d?", n.field, n.value)
		walk(n.hi)
		b.WriteString(":")
		walk(n.lo)
		b.WriteString(")")
	}
	walk(d)
	return b.String()
}

// nodeKey identifies a test node by its packed (field, value) atom and
// child ids — three machine words, no string hashing on the consing
// path.
type nodeKey struct {
	atom       uint64
	hiID, loID int
}

type fddPair struct{ a, b int }

// FDDCtx owns the hash-consing tables and combinator memos for one
// compilation. Nodes live in a chunked arena (intern.go); every cache
// below is keyed by dense ids or packed atoms, never by rendered text.
// A context is not safe for concurrent use; parallel compiles (e.g. the
// per-state worker pool in internal/ets) each build their own.
type FDDCtx struct {
	arena  fddArena
	nextID int
	fields fieldIntern
	nodes  map[nodeKey]*FDD

	// leaf1 interns the common single-action leaves by action id; leafN
	// interns multicast leaves by their packed sorted action-id bytes.
	leaf1 map[int]*FDD
	leafN map[string]*FDD

	// actions interns assignment sets by packed (fieldID, value) pairs
	// in sorted-field order.
	actions map[string]*Action

	unionMemo map[fddPair]*FDD
	seqMemo   map[fddPair]*FDD
	gateMemo  map[fddPair]*FDD
	pushMemo  map[fddPair]*FDD // (action id, fdd id)
	notMemo   map[int]*FDD

	// hopCache memoizes symbolic strand execution (fdd_table.go) across
	// compiles sharing this context: policies projected from different
	// states of one program repeat most strands verbatim. Each cached hop
	// carries its prebuilt single-rule diagram. Keys are packed id bytes
	// (strandCacheKey).
	hopCache map[string][]cachedHop

	// foldCache memoizes the per-switch union fold over hop diagrams by
	// the packed hop identity sequence, and ruleCache memoizes table
	// extraction by switch-diagram identity: states with the same
	// per-switch behavior share one fold and one extraction. The cached
	// rules (and their inner maps) are shared and must be treated as
	// immutable.
	foldCache map[string]*FDD
	ruleCache map[int][]flowtable.Rule

	// scratch buffers reused across intern/key construction calls.
	keyBuf []byte

	// ID is the identity diagram (leaf {id}); Drop is the empty leaf.
	ID   *FDD
	Drop *FDD
	eps  *Action
}

// NewFDDCtx returns a fresh hash-consing context.
func NewFDDCtx() *FDDCtx {
	c := &FDDCtx{
		fields:    newFieldIntern(),
		nodes:     map[nodeKey]*FDD{},
		leaf1:     map[int]*FDD{},
		leafN:     map[string]*FDD{},
		actions:   map[string]*Action{},
		unionMemo: map[fddPair]*FDD{},
		seqMemo:   map[fddPair]*FDD{},
		gateMemo:  map[fddPair]*FDD{},
		pushMemo:  map[fddPair]*FDD{},
		notMemo:   map[int]*FDD{},
		hopCache:  map[string][]cachedHop{},
		foldCache: map[string]*FDD{},
		ruleCache: map[int][]flowtable.Rule{},
	}
	c.eps = c.internAction(nil)
	c.Drop = c.mkLeaf(nil)
	c.ID = c.mkLeaf([]*Action{c.eps})
	return c
}

// NodeCount returns the number of nodes interned so far — the size of the
// hash-consed node store, reported by CacheStats.
func (c *FDDCtx) NodeCount() int { return c.nextID }

// StrandCount returns the number of distinct symbolic strand executions
// memoized so far.
func (c *FDDCtx) StrandCount() int { return len(c.hopCache) }

// ArenaBytes returns the slab bytes reserved by the node arena.
func (c *FDDCtx) ArenaBytes() int64 { return c.arena.bytes() }

// AtomCount returns the number of interned field atoms plus actions —
// the per-context interner population reported by CacheStats.
func (c *FDDCtx) AtomCount() int { return c.fields.len() + len(c.actions) }

// internAction canonicalizes an assignment map under a packed binary
// key: sorted field ids and values, 8 bytes per assignment, no decimal
// rendering.
func (c *FDDCtx) internAction(sets map[string]int) *Action {
	fs := make([]string, 0, len(sets))
	for f := range sets {
		checkAtomValue(sets[f])
		fs = append(fs, f)
	}
	sort.Strings(fs)
	buf := c.keyBuf[:0]
	for _, f := range fs {
		buf = appendUint64(buf, packAtom(c.fields.id(f), sets[f]))
	}
	c.keyBuf = buf
	if a, ok := c.actions[string(buf)]; ok {
		return a
	}
	cp := make(map[string]int, len(sets))
	for f, v := range sets {
		cp[f] = v
	}
	a := &Action{id: len(c.actions), sets: cp, fields: fs}
	c.actions[string(buf)] = a
	return a
}

// appendUint64 appends v big-endian.
func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendID appends a dense id as 4 little-endian bytes (ids are bounded
// by store sizes, far below 2^32).
func appendID(b []byte, id int) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// compose sequences two actions: b's assignments override a's.
func (c *FDDCtx) compose(a, b *Action) *Action {
	if len(b.sets) == 0 {
		return a
	}
	if len(a.sets) == 0 {
		return b
	}
	m := a.Sets()
	for f, v := range b.sets {
		m[f] = v
	}
	return c.internAction(m)
}

// mkLeaf interns a leaf with the canonical (sorted, deduplicated) form of
// the given action set. Single-action leaves — the overwhelmingly common
// case — are an int-keyed lookup; multicast leaves key on packed sorted
// action ids. Action ids are assigned at intern time, so sorting by id is
// deterministic for a deterministic compile sequence, and extraction
// re-sorts groups canonically anyway.
func (c *FDDCtx) mkLeaf(acts []*Action) *FDD {
	if len(acts) == 0 && c.Drop != nil {
		return c.Drop
	}
	if len(acts) == 1 {
		if d, ok := c.leaf1[acts[0].id]; ok {
			return d
		}
		d := c.newLeaf([]*Action{acts[0]})
		c.leaf1[acts[0].id] = d
		return d
	}
	sorted := append([]*Action{}, acts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	uniq := sorted[:0]
	var prev *Action
	for _, a := range sorted {
		if a != prev {
			uniq = append(uniq, a)
		}
		prev = a
	}
	if len(uniq) == 1 {
		return c.mkLeaf(uniq[:1])
	}
	buf := c.keyBuf[:0]
	for _, a := range uniq {
		buf = appendID(buf, a.id)
	}
	c.keyBuf = buf
	if d, ok := c.leafN[string(buf)]; ok {
		return d
	}
	d := c.newLeaf(append([]*Action{}, uniq...))
	c.leafN[string(buf)] = d
	return d
}

// newLeaf allocates a leaf node from the arena.
func (c *FDDCtx) newLeaf(acts []*Action) *FDD {
	d := c.arena.alloc()
	c.nextID = c.arena.n
	d.leaf = true
	d.acts = acts
	return d
}

// mkNode interns a test node, eliminating it when both branches agree.
func (c *FDDCtx) mkNode(field string, value int, hi, lo *FDD) *FDD {
	if hi == lo {
		return hi
	}
	checkAtomValue(value)
	k := nodeKey{atom: packAtom(c.fields.id(field), value), hiID: hi.id, loID: lo.id}
	if d, ok := c.nodes[k]; ok {
		return d
	}
	d := c.arena.alloc()
	c.nextID = c.arena.n
	d.field = field
	d.value = value
	d.hi = hi
	d.lo = lo
	c.nodes[k] = d
	return d
}

// atom returns the single-test filter diagram field = value (negated if
// neg).
func (c *FDDCtx) atom(field string, value int, neg bool) *FDD {
	if neg {
		return c.mkNode(field, value, c.Drop, c.ID)
	}
	return c.mkNode(field, value, c.ID, c.Drop)
}

// specialize restricts d to field = value: in a canonical diagram every
// test on the field sits on the top lo-spine, so pinning the field just
// walks it.
func specialize(d *FDD, field string, value int) *FDD {
	for !d.leaf && d.field == field {
		if d.value == value {
			d = d.hi
		} else {
			d = d.lo
		}
	}
	return d
}

// sameRoot reports whether two internal nodes test the same (field, value).
func sameRoot(a, b *FDD) bool {
	return !a.leaf && !b.leaf && a.field == b.field && a.value == b.value
}

// rootFirst reports whether a is an internal node whose root test is
// strictly ordered before b's (leaves order after every test).
func rootFirst(a, b *FDD) bool {
	if a.leaf {
		return false
	}
	if b.leaf {
		return true
	}
	return testLess(a.field, a.value, b.field, b.value)
}

// Union returns the diagram denoting the union of the two behaviors
// (leaf action sets are unioned pointwise over the packet space).
func (c *FDDCtx) Union(a, b *FDD) *FDD {
	if a == b {
		return a
	}
	if a.isDropLeaf() {
		return b
	}
	if b.isDropLeaf() {
		return a
	}
	if a.leaf && b.leaf {
		return c.mkLeaf(append(append([]*Action{}, a.acts...), b.acts...))
	}
	k := fddPair{a.id, b.id}
	if k.a > k.b {
		k.a, k.b = k.b, k.a // union is commutative
	}
	if r, ok := c.unionMemo[k]; ok {
		return r
	}
	var r *FDD
	switch {
	case sameRoot(a, b):
		r = c.mkNode(a.field, a.value, c.Union(a.hi, b.hi), c.Union(a.lo, b.lo))
	case rootFirst(a, b):
		r = c.mkNode(a.field, a.value, c.Union(a.hi, specialize(b, a.field, a.value)), c.Union(a.lo, b))
	default:
		r = c.mkNode(b.field, b.value, c.Union(specialize(a, b.field, b.value), b.hi), c.Union(a, b.lo))
	}
	c.unionMemo[k] = r
	return r
}

// gate restricts d to the region where the filter diagram p (leaves ID or
// Drop) accepts; on filters it is conjunction.
func (c *FDDCtx) gate(p, d *FDD) *FDD {
	if p.leaf {
		if len(p.acts) > 0 {
			return d
		}
		return c.Drop
	}
	if d.isDropLeaf() {
		return c.Drop
	}
	k := fddPair{p.id, d.id}
	if r, ok := c.gateMemo[k]; ok {
		return r
	}
	var r *FDD
	switch {
	case sameRoot(p, d):
		r = c.mkNode(p.field, p.value, c.gate(p.hi, d.hi), c.gate(p.lo, d.lo))
	case rootFirst(p, d):
		r = c.mkNode(p.field, p.value, c.gate(p.hi, specialize(d, p.field, p.value)), c.gate(p.lo, d))
	default:
		r = c.mkNode(d.field, d.value, c.gate(specialize(p, d.field, d.value), d.hi), c.gate(p, d.lo))
	}
	c.gateMemo[k] = r
	return r
}

// Not complements a filter diagram (leaves must be ID or Drop).
func (c *FDDCtx) Not(p *FDD) *FDD {
	if p.leaf {
		if len(p.acts) > 0 {
			return c.Drop
		}
		return c.ID
	}
	if r, ok := c.notMemo[p.id]; ok {
		return r
	}
	r := c.mkNode(p.field, p.value, c.Not(p.hi), c.Not(p.lo))
	c.notMemo[p.id] = r
	return r
}

// branch builds the canonical diagram for "if field = value then t else
// e" where t and e are arbitrary canonical diagrams (their roots may test
// fields ordered before the condition).
func (c *FDDCtx) branch(field string, value int, t, e *FDD) *FDD {
	if t == e {
		return t
	}
	return c.Union(
		c.gate(c.atom(field, value, false), t),
		c.gate(c.atom(field, value, true), e),
	)
}

// push threads an action through a diagram: tests on assigned fields are
// resolved statically (they see the written value) and leaf actions are
// composed after act.
func (c *FDDCtx) push(act *Action, d *FDD) *FDD {
	if d.leaf {
		if len(d.acts) == 0 {
			return c.Drop
		}
		out := make([]*Action, 0, len(d.acts))
		for _, b := range d.acts {
			out = append(out, c.compose(act, b))
		}
		return c.mkLeaf(out)
	}
	k := fddPair{act.id, d.id}
	if r, ok := c.pushMemo[k]; ok {
		return r
	}
	var r *FDD
	if v, ok := act.sets[d.field]; ok {
		if v == d.value {
			r = c.push(act, d.hi)
		} else {
			r = c.push(act, d.lo)
		}
	} else {
		r = c.mkNode(d.field, d.value, c.push(act, d.hi), c.push(act, d.lo))
	}
	c.pushMemo[k] = r
	return r
}

// Seq returns the Kleisli composition a; b.
func (c *FDDCtx) Seq(a, b *FDD) *FDD {
	if a.isDropLeaf() || b.isDropLeaf() {
		return c.Drop
	}
	if a == c.ID {
		return b
	}
	if b == c.ID {
		return a
	}
	k := fddPair{a.id, b.id}
	if r, ok := c.seqMemo[k]; ok {
		return r
	}
	var r *FDD
	if a.leaf {
		r = c.Drop
		for _, act := range a.acts {
			r = c.Union(r, c.push(act, b))
		}
	} else {
		r = c.branch(a.field, a.value, c.Seq(a.hi, b), c.Seq(a.lo, b))
	}
	c.seqMemo[k] = r
	return r
}

// Star computes the reflexive-transitive closure by fixpoint iteration;
// hash-consing makes convergence a pointer comparison.
func (c *FDDCtx) Star(a *FDD) (*FDD, error) {
	s := c.ID
	for i := 0; i < starBound; i++ {
		next := c.Union(c.ID, c.Seq(a, s))
		if next == s {
			return s, nil
		}
		s = next
	}
	return nil, fmt.Errorf("nkc: fdd star did not stabilize within %d iterations", starBound)
}

// FromPredFDD translates a predicate into a filter diagram.
func (c *FDDCtx) FromPredFDD(p netkat.Pred) *FDD {
	switch q := p.(type) {
	case netkat.True:
		return c.ID
	case netkat.False:
		return c.Drop
	case netkat.Test:
		return c.atom(q.Field, q.Value, false)
	case netkat.Not:
		return c.Not(c.FromPredFDD(q.P))
	case netkat.And:
		return c.gate(c.FromPredFDD(q.L), c.FromPredFDD(q.R))
	case netkat.Or:
		return c.Union(c.FromPredFDD(q.L), c.FromPredFDD(q.R))
	default:
		panic(fmt.Sprintf("nkc: unknown predicate node %T", p))
	}
}

// ToFDD translates a link-free policy into a diagram. It returns an error
// if the policy contains a Link or a non-stabilizing Star.
func (c *FDDCtx) ToFDD(p netkat.Policy) (*FDD, error) {
	switch q := p.(type) {
	case netkat.Filter:
		return c.FromPredFDD(q.P), nil
	case netkat.Assign:
		return c.mkLeaf([]*Action{c.internAction(map[string]int{q.Field: q.Value})}), nil
	case netkat.Union:
		l, err := c.ToFDD(q.L)
		if err != nil {
			return nil, err
		}
		r, err := c.ToFDD(q.R)
		if err != nil {
			return nil, err
		}
		return c.Union(l, r), nil
	case netkat.Seq:
		l, err := c.ToFDD(q.L)
		if err != nil {
			return nil, err
		}
		r, err := c.ToFDD(q.R)
		if err != nil {
			return nil, err
		}
		return c.Seq(l, r), nil
	case netkat.Star:
		inner, err := c.ToFDD(q.P)
		if err != nil {
			return nil, err
		}
		return c.Star(inner)
	case netkat.Link:
		return nil, fmt.Errorf("nkc: link %v inside a link-free context", q)
	default:
		return nil, fmt.Errorf("nkc: unknown policy node %T", p)
	}
}

// Eval applies the diagram to a located packet, returning the output set
// in canonical order. Tests resolve "sw" and "pt" against the location.
func (d *FDD) Eval(lp netkat.LocatedPacket) []netkat.LocatedPacket {
	n := d
	for !n.leaf {
		var cur int
		ok := true
		switch n.field {
		case netkat.FieldSw:
			cur = lp.Loc.Switch
		case netkat.FieldPt:
			cur = lp.Loc.Port
		default:
			cur, ok = lp.Pkt[n.field]
		}
		if ok && cur == n.value {
			n = n.hi
		} else {
			n = n.lo
		}
	}
	seen := map[string]netkat.LocatedPacket{}
	for _, a := range n.acts {
		out := netkat.LocatedPacket{Pkt: lp.Pkt.Clone(), Loc: lp.Loc}
		for f, v := range a.sets {
			switch f {
			case netkat.FieldPt:
				out.Loc.Port = v
			case netkat.FieldSw:
				out.Loc.Switch = v // rejected by Validate; defensive
			default:
				out.Pkt[f] = v
			}
		}
		seen[out.Key()] = out
	}
	outs := make([]netkat.LocatedPacket, 0, len(seen))
	for _, v := range seen {
		outs = append(outs, v)
	}
	netkat.SortLocated(outs)
	return outs
}

// maxFDDPaths bounds leaf-path enumeration, mirroring maxChoices.
const maxFDDPaths = maxChoices

// PathSet enumerates the diagram's root-leaf paths as compiler paths: one
// Path per (path condition, leaf action) pair. Unlike DNF path normal
// form the conditions of distinct paths are mutually disjoint.
//
// The returned paths share their condition per leaf and alias the
// diagram's interned action maps; callers must treat Cond and Acts as
// read-only (Path.Clone gives an independent copy).
func (d *FDD) PathSet() (PathSet, error) {
	var out []Path
	type pathLit struct {
		f  string
		v  int
		eq bool
	}
	var lits []pathLit
	var walk func(n *FDD) error
	walk = func(n *FDD) error {
		if n.leaf {
			if len(n.acts) == 0 {
				return nil
			}
			if len(out)+len(n.acts) > maxFDDPaths {
				return fmt.Errorf("nkc: fdd expands to more than %d paths", maxFDDPaths)
			}
			cond := netkat.NewConj()
			for _, l := range lits {
				// Always satisfiable: each (field, value) test occurs at
				// most once along a canonical root-leaf path.
				if l.eq {
					cond.AddEq(l.f, l.v)
				} else {
					cond.AddNeq(l.f, l.v)
				}
			}
			for _, a := range n.acts {
				out = append(out, Path{Cond: cond, Acts: a.sets})
			}
			return nil
		}
		lits = append(lits, pathLit{f: n.field, v: n.value, eq: true})
		if err := walk(n.hi); err != nil {
			return err
		}
		lits[len(lits)-1].eq = false
		if err := walk(n.lo); err != nil {
			return err
		}
		lits = lits[:len(lits)-1]
		return nil
	}
	if err := walk(d); err != nil {
		return PathSet{}, err
	}
	return PathSet{Paths: out}, nil
}
