package nkc

// ProgramCache: the cross-generation compiler cache behind live program
// swaps. A long-lived controller (internal/ctrl) compiles a *sequence* of
// programs over one topology — P, then a revision P', sometimes P again —
// and per-build caches would pay full price for every swap. This cache
// keeps three layers alive across builds:
//
//   - one persistent hash-consing FDD context shared by every cached
//     program, so structurally identical link-free segments compile to
//     the *same* FDD nodes no matter which program they appear in;
//   - one structural segment memo (segMemoKey carries the segment's
//     canonical rendering, not a per-program position), so a revision
//     re-enters ToFDD only for the segments it actually changed;
//   - one SharedCache of whole configurations *per program*, keyed by
//     program identity, because guard signatures are only meaningful
//     relative to one program's guard index.
//
// Swapping P -> P' -> P therefore recompiles nothing on the way back, and
// P -> P' compiles as a delta proportional to the textual difference
// between the programs. The cache is handed to ets.BuildWithOptions via
// Options.Cache; Acquire/Release bracket a build because the shared FDD
// context is single-goroutine by design.

import (
	"strconv"
	"strings"

	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// progEntry is one cached program: its root incremental compiler (whose
// FDD context and segment memo are the cache's shared ones) and its
// whole-configuration cache.
type progEntry struct {
	root   *ProgramCompiler
	shared *SharedCache
}

// programCacheLimit bounds the number of distinct programs cached; past
// it the cache resets wholesale (entries pin FDD nodes in the shared
// context, so eviction must drop the context with them).
const programCacheLimit = 32

// ProgramCache memoizes incremental program compilers across builds. The
// zero value is not usable; construct with NewProgramCache. All methods
// are safe for concurrent use, but at most one build may hold an
// acquisition at a time (Acquire blocks until the cache is free).
type ProgramCache struct {
	mu      chan struct{} // 1-buffered semaphore: held from Acquire to Release
	ctx     *FDDCtx
	segMemo map[segMemoKey]*FDD
	intern  *compilerInterns
	entries map[string]*progEntry
	resets  int
	arenaHW int64 // largest arena seen across generations
}

// NewProgramCache returns an empty cross-generation compiler cache.
func NewProgramCache() *ProgramCache {
	c := &ProgramCache{
		mu:      make(chan struct{}, 1),
		ctx:     NewFDDCtx(),
		segMemo: map[segMemoKey]*FDD{},
		intern:  newCompilerInterns(),
		entries: map[string]*progEntry{},
	}
	return c
}

// programKey identifies a compilation unit: backend, canonical program
// rendering, and the topology's full structure.
func programKey(b Backend, cmd stateful.Cmd, t *topo.Topology) string {
	var sb strings.Builder
	sb.WriteString(b.String())
	sb.WriteByte('|')
	sb.WriteString(cmd.String())
	sb.WriteByte('|')
	for _, sw := range t.Switches {
		sb.WriteString("s")
		sb.WriteString(strconv.Itoa(sw))
	}
	for _, h := range t.Hosts {
		sb.WriteString(";h")
		sb.WriteString(strconv.Itoa(h.ID))
		sb.WriteString("=")
		sb.WriteString(h.Name)
		sb.WriteString("@")
		sb.WriteString(h.Attach.String())
	}
	for _, lk := range t.Links {
		sb.WriteString(";l")
		sb.WriteString(lk.Src.String())
		sb.WriteString(">")
		sb.WriteString(lk.Dst.String())
	}
	return sb.String()
}

// Acquire locks the cache and returns the root compiler and
// whole-configuration cache for (backend, program, topology), creating
// and memoizing them on first use. The root compiler shares the cache's
// FDD context and structural segment memo with every other cached
// program, so revisions reuse the segments they did not change. The
// caller must hold the acquisition for the entire build (the shared
// context is single-goroutine) and end it with Release; Fork the root
// for additional workers as usual — forks own fresh contexts and do not
// persist, only the root and the SharedCache accumulate.
func (c *ProgramCache) Acquire(b Backend, cmd stateful.Cmd, t *topo.Topology) (*ProgramCompiler, *SharedCache, error) {
	c.mu <- struct{}{}
	key := programKey(b, cmd, t)
	if e, ok := c.entries[key]; ok {
		return e.root, e.shared, nil
	}
	if len(c.entries) >= programCacheLimit {
		// Entries hold FDD pointers into the shared context, and interned
		// ids are pinned by segMemo keys and SharedCache keys: evicting any
		// entry safely means dropping the context and interners with it, so
		// reset wholesale. A controller cycling through more than
		// programCacheLimit live programs simply starts a fresh cache
		// generation.
		c.noteArena()
		c.ctx = NewFDDCtx()
		c.segMemo = map[segMemoKey]*FDD{}
		c.intern = newCompilerInterns()
		c.entries = map[string]*progEntry{}
		c.resets++
	}
	root, err := NewProgramCompilerWith(b, cmd, t, NewSharedCache())
	if err != nil {
		<-c.mu
		return nil, nil, err
	}
	if b != BackendDNF {
		root.ctx = c.ctx
		root.segMemo = c.segMemo
	}
	root.adoptInterns(c.intern)
	e := &progEntry{root: root, shared: root.shared}
	c.entries[key] = e
	return e.root, e.shared, nil
}

// noteArena records the current arena size into the high-water mark.
// Callers must hold the acquisition.
func (c *ProgramCache) noteArena() {
	if b := c.ctx.ArenaBytes(); b > c.arenaHW {
		c.arenaHW = b
	}
}

// Release ends an acquisition started by Acquire.
func (c *ProgramCache) Release() {
	c.noteArena()
	<-c.mu
}

// ArenaHighWater returns the largest FDD arena seen across cache
// generations — the compiler-memory figure obs reports alongside the
// current arena size.
func (c *ProgramCache) ArenaHighWater() int64 {
	c.mu <- struct{}{}
	n := c.arenaHW
	<-c.mu
	return n
}

// Len returns the number of distinct programs currently cached.
func (c *ProgramCache) Len() int {
	c.mu <- struct{}{}
	n := len(c.entries)
	<-c.mu
	return n
}

// Segments returns the size of the shared structural segment memo — the
// cross-program FDD reuse surface (grows with structural variety, not
// with the number of builds).
func (c *ProgramCache) Segments() int {
	c.mu <- struct{}{}
	n := len(c.segMemo)
	<-c.mu
	return n
}

// Resets returns how many times the cache reset wholesale after
// exceeding its program limit.
func (c *ProgramCache) Resets() int {
	c.mu <- struct{}{}
	n := c.resets
	<-c.mu
	return n
}
