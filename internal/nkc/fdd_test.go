package nkc

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/flowtable"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// TestToFDDEquivalence: the FDD of a random link-free policy is pointwise
// equal to the reference evaluator.
func TestToFDDEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := NewFDDCtx()
	for i := 0; i < 500; i++ {
		p := randLinkFree(r, 3)
		d, err := c.ToFDD(p)
		if err != nil {
			t.Fatalf("ToFDD(%v): %v", p, err)
		}
		x := randLP(r)
		want := netkat.Eval(p, x)
		got := d.Eval(x)
		if len(want) != len(got) {
			t.Fatalf("size mismatch for %v on %v: got %v want %v", p, x, got, want)
		}
		for j := range want {
			if !want[j].Equal(got[j]) {
				t.Fatalf("mismatch for %v on %v: got %v want %v", p, x, got, want)
			}
		}
	}
}

// TestFDDPathSetEquivalence: the paths enumerated from an FDD denote the
// same function as the policy, and their conditions are mutually disjoint
// (at most one path condition holds of any packet).
func TestFDDPathSetEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := NewFDDCtx()
	for i := 0; i < 300; i++ {
		p := randLinkFree(r, 3)
		d, err := c.ToFDD(p)
		if err != nil {
			t.Fatalf("ToFDD(%v): %v", p, err)
		}
		ps, err := d.PathSet()
		if err != nil {
			t.Fatalf("PathSet(%v): %v", p, err)
		}
		x := randLP(r)
		want := netkat.Eval(p, x)
		got := ps.Eval(x)
		if len(want) != len(got) {
			t.Fatalf("size mismatch for %v on %v: got %v want %v", p, x, got, want)
		}
		for j := range want {
			if !want[j].Equal(got[j]) {
				t.Fatalf("mismatch for %v on %v: got %v want %v", p, x, got, want)
			}
		}
		// Disjointness: distinct path conditions never overlap.
		holds := 0
		seen := map[string]bool{}
		for _, pth := range ps.Paths {
			k := pth.Cond.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if pth.Cond.Eval(x) {
				holds++
			}
		}
		if holds > 1 {
			t.Fatalf("FDD paths overlap on %v for %v", x, p)
		}
	}
}

// TestFDDHashConsing: semantically equal diagrams built along different
// syntactic routes are the same pointer (union commutativity/idempotence,
// seq distribution, double star).
func TestFDDHashConsing(t *testing.T) {
	c := NewFDDCtx()
	mk := func(p netkat.Policy) *FDD {
		d, err := c.ToFDD(p)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}
	b := netkat.Filter{P: netkat.Test{Field: "y", Value: 2}}
	asn := netkat.Assign{Field: "x", Value: 2}

	if mk(netkat.Union{L: a, R: b}) != mk(netkat.Union{L: b, R: a}) {
		t.Error("union not commutative up to hash-consing")
	}
	if mk(netkat.Union{L: a, R: a}) != mk(a) {
		t.Error("union not idempotent up to hash-consing")
	}
	if mk(netkat.Seq{L: asn, R: netkat.Union{L: a, R: b}}) !=
		mk(netkat.Union{L: netkat.Seq{L: asn, R: a}, R: netkat.Seq{L: asn, R: b}}) {
		t.Error("seq does not distribute over union up to hash-consing")
	}
	star := netkat.Star{P: asn}
	if mk(star) != mk(netkat.Star{P: star}) {
		t.Error("p** != p* up to hash-consing")
	}
	if mk(netkat.Star{P: a}) != c.ID {
		t.Error("test* != id")
	}
}

// journeySets drives the compiled configuration relation exhaustively
// from a start point, returning the set of every visited directed packet
// and the set of reached located packets (either direction).
func journeySets(t *testing.T, cfg *CompiledConfig, start netkat.DPacket) (map[string]bool, map[string]bool) {
	t.Helper()
	visited := map[string]bool{}
	reached := map[string]bool{}
	frontier := []netkat.DPacket{start}
	for steps := 0; len(frontier) > 0; steps++ {
		if steps > 10000 {
			t.Fatalf("journey from %v did not terminate", start)
		}
		var next []netkat.DPacket
		for _, d := range frontier {
			k := d.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			reached[d.LP().Key()] = true
			next = append(next, cfg.DStep(d)...)
		}
		frontier = next
	}
	return visited, reached
}

// equivInputs enumerates one representative located packet per
// equivalence class of the policy's finite model (the same construction
// the exact equivalence checker uses).
func equivInputs(t *testing.T, pols ...netkat.Policy) []netkat.LocatedPacket {
	t.Helper()
	reps := representatives(pols...)
	fields := make([]string, 0, len(reps))
	total := 1
	for f := range reps {
		fields = append(fields, f)
		total *= len(reps[f])
	}
	sort.Strings(fields)
	if total > maxEquivPackets {
		t.Fatalf("too many representative packets (%d)", total)
	}
	var out []netkat.LocatedPacket
	idx := make([]int, len(fields))
	for {
		lp := netkat.LocatedPacket{Pkt: netkat.Packet{}}
		for i, f := range fields {
			v := reps[f][idx[i]]
			switch f {
			case netkat.FieldSw:
				lp.Loc.Switch = v
			case netkat.FieldPt:
				lp.Loc.Port = v
			default:
				lp.Pkt[f] = v
			}
		}
		out = append(out, lp)
		i := 0
		for ; i < len(fields); i++ {
			idx[i]++
			if idx[i] < len(reps[fields[i]]) {
				break
			}
			idx[i] = 0
		}
		if i == len(fields) {
			return out
		}
	}
}

// TestCompileFDDMatchesDNFOnApps is the acceptance property for the FDD
// backend: on every reachable configuration of the five paper
// applications and the ring, the FDD and DNF backends produce tables
// whose configuration relations visit exactly the same directed packets
// from every representative ingress point, and every output the
// reference evaluator predicts appears among the compiled egress points.
func TestCompileFDDMatchesDNFOnApps(t *testing.T) {
	cases := apps.All()
	cases = append(cases, apps.Ring(3))
	for _, a := range cases {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range states {
				pol := stateful.Project(a.Prog.Cmd, k)
				tFDD, err := CompileFDD(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: FDD: %v", k, err)
				}
				tDNF, err := CompileDNF(pol, a.Topo)
				if err != nil {
					t.Fatalf("state %v: DNF: %v", k, err)
				}
				cfgFDD := &CompiledConfig{Tables: tFDD, Topo: a.Topo}
				cfgDNF := &CompiledConfig{Tables: tDNF, Topo: a.Topo}
				for _, lp := range equivInputs(t, pol) {
					start := netkat.DPacket{Pkt: lp.Pkt, Loc: lp.Loc}
					visF, reachF := journeySets(t, cfgFDD, start)
					visD, _ := journeySets(t, cfgDNF, start)
					if len(visF) != len(visD) {
						t.Fatalf("state %v from %v: FDD visits %d points, DNF %d", k, lp, len(visF), len(visD))
					}
					for p := range visF {
						if !visD[p] {
							t.Fatalf("state %v from %v: FDD visits %s, DNF does not", k, lp, p)
						}
					}
					for _, want := range netkat.Eval(pol, lp) {
						if !reachF[want.Key()] {
							t.Fatalf("state %v: Eval predicts %v from %v but the FDD tables never reach it", k, want, lp)
						}
					}
				}
			}
		})
	}
}

// TestCompileFDDMatchesDNFRandom fuzzes the two backends against each
// other on single-switch link-free policies: the compiles must agree on
// whether the policy is table-realizable, and when it is, the tables
// must process every representative packet identically.
func TestCompileFDDMatchesDNFRandom(t *testing.T) {
	tp := topo.New()
	tp.AddSwitch(1)
	r := rand.New(rand.NewSource(17))
	compiled := 0
	for i := 0; i < 400; i++ {
		p := randLinkFree(r, 3)
		tFDD, errF := CompileFDD(p, tp)
		tDNF, errD := CompileDNF(p, tp)
		if (errF == nil) != (errD == nil) {
			t.Fatalf("backend error mismatch for %v: fdd=%v dnf=%v", p, errF, errD)
		}
		if errF != nil {
			continue
		}
		compiled++
		for port := 0; port < 4; port++ {
			for av := 0; av < 3; av++ {
				for bv := 0; bv < 3; bv++ {
					pkt := netkat.Packet{"a": av, "b": bv}
					outF := tFDD.Get(1).Process(pkt, port, 0)
					outD := tDNF.Get(1).Process(pkt, port, 0)
					if !sameOutputs(outF, outD) {
						t.Fatalf("policy %v port %d pkt %v: fdd %v dnf %v\nfdd tables:\n%v\ndnf tables:\n%v",
							p, port, pkt, outF, outD, tFDD, tDNF)
					}
				}
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no random policy compiled on either backend; fuzz is vacuous")
	}
}

func sameOutputs(a, b []flowtable.Output) bool {
	ka := outputKeys(a)
	kb := outputKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// outputKeys canonicalizes table outputs as a sorted, deduplicated key
// list (union semantics: emitting the same copy twice is one output).
func outputKeys(outs []flowtable.Output) []string {
	seen := map[string]bool{}
	var keys []string
	for _, o := range outs {
		k := strconv.Itoa(o.Port) + "|" + o.Pkt.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TestCompileFDDPortExclusion: a wildcard-ingress strand unioned with an
// exact-ingress strand compiles to tables whose behavior matches the
// evaluator on every port — the case that exercises ExcludePorts.
func TestCompileFDDPortExclusion(t *testing.T) {
	tp := topo.New()
	tp.AddSwitch(1)
	p := netkat.Union{
		L: netkat.SeqAll(netkat.Filter{P: netkat.Test{Field: netkat.FieldPt, Value: 2}}, netkat.Assign{Field: netkat.FieldPt, Value: 1}),
		R: netkat.SeqAll(netkat.Filter{P: netkat.Test{Field: "sig", Value: 1}}, netkat.Assign{Field: netkat.FieldPt, Value: 3}),
	}
	tables, err := CompileFDD(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Port 2 with sig=1: both strands fire.
	outs := tables.Get(1).Process(netkat.Packet{"sig": 1}, 2, 0)
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.Port] = true
	}
	if len(outs) != 2 || !ports[1] || !ports[3] {
		t.Fatalf("port 2 sig=1: %v\n%v", outs, tables)
	}
	// Port 4 with sig=1: only the signal strand.
	outs = tables.Get(1).Process(netkat.Packet{"sig": 1}, 4, 0)
	if len(outs) != 1 || outs[0].Port != 3 {
		t.Fatalf("port 4 sig=1: %v\n%v", outs, tables)
	}
	// Port 4 without sig: drop.
	if outs = tables.Get(1).Process(netkat.Packet{"sig": 0}, 4, 0); outs != nil {
		t.Fatalf("port 4 sig=0 forwarded: %v", outs)
	}
	// Cross-check against the DNF backend, which now supports the same
	// wildcard-ingress exclusions.
	tDNF, err := CompileDNF(p, tp)
	if err != nil {
		t.Fatal(err)
	}
	for port := 1; port <= 4; port++ {
		for sig := 0; sig <= 1; sig++ {
			pkt := netkat.Packet{"sig": sig}
			if !sameOutputs(tables.Get(1).Process(pkt, port, 0), tDNF.Get(1).Process(pkt, port, 0)) {
				t.Fatalf("port %d sig %d: backends disagree", port, sig)
			}
		}
	}
}
