package nkc

// Dense interning and arena allocation: the compiler's memory/keying
// layer. Three structures live here:
//
//   - Interner: a concurrency-safe string -> dense uint32 id table. Guard
//     signatures and segment renderings are interned once, so every cache
//     keyed by them (segment memo, SharedCache, ProgramCache entries)
//     becomes an integer lookup with no string hashing on the per-state
//     hot path. Ids are assigned in first-intern order and never reused;
//     injectivity is what makes them sound cache keys (see
//     docs/PIPELINE.md, "Interning and arena soundness").
//
//   - fieldIntern: a per-context (single-goroutine) field-name table used
//     to pack (field, value) test atoms into one uint64 for hash-consing
//     and memo keys. The canonical test *order* still compares field
//     names (testLess); the packed form is identity only.
//
//   - fddArena: chunked slab storage for FDD nodes. Chunks are
//     append-only and never reallocated, so node pointers stay stable
//     for the life of the context while the GC sees one object per 4096
//     nodes instead of one per node. Node identity is the dense id
//     assigned at allocation; the slab index of a node is id itself,
//     making id -> node resolution array indexing.

import (
	"sync"
	"unsafe"
)

// Interner assigns dense uint32 ids to strings. It is safe for
// concurrent use: one Interner is shared by every fork of a
// ProgramCompiler (and by every program in a ProgramCache generation),
// so ids agree across workers and the SharedCache can key on them.
type Interner struct {
	mu  sync.Mutex
	ids map[string]uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: map[string]uint32{}}
}

// ID returns the dense id for s, assigning the next id on first sight.
func (in *Interner) ID(s string) uint32 {
	in.mu.Lock()
	id, ok := in.ids[s]
	if !ok {
		id = uint32(len(in.ids))
		in.ids[s] = id
	}
	in.mu.Unlock()
	return id
}

// IDBytes is ID for a byte-slice key. The lookup itself does not copy
// (Go's map[string] lookup accepts string(b) without allocating); the
// key is materialized only on first intern.
func (in *Interner) IDBytes(b []byte) uint32 {
	in.mu.Lock()
	id, ok := in.ids[string(b)]
	if !ok {
		id = uint32(len(in.ids))
		in.ids[string(b)] = id
	}
	in.mu.Unlock()
	return id
}

// Len returns the number of interned entries.
func (in *Interner) Len() int {
	in.mu.Lock()
	n := len(in.ids)
	in.mu.Unlock()
	return n
}

// fieldIntern is the per-context field-atom table. Not safe for
// concurrent use — it lives inside FDDCtx, which is single-goroutine by
// design.
type fieldIntern struct {
	ids map[string]uint32
}

func newFieldIntern() fieldIntern { return fieldIntern{ids: map[string]uint32{}} }

func (fi *fieldIntern) id(f string) uint32 {
	id, ok := fi.ids[f]
	if !ok {
		id = uint32(len(fi.ids))
		fi.ids[f] = id
	}
	return id
}

func (fi *fieldIntern) len() int { return len(fi.ids) }

// packAtom packs an interned field id and a test/assignment value into
// one uint64 key. Values must fit int32 (the same domain the dataplane's
// flat lowering enforces); the cast is checked by the caller via
// checkAtomValue so an out-of-range value fails loudly rather than
// aliasing another atom.
func packAtom(fieldID uint32, value int) uint64 {
	return uint64(fieldID)<<32 | uint64(uint32(value))
}

// checkAtomValue panics if v cannot be packed injectively.
func checkAtomValue(v int) {
	if int(int32(v)) != v {
		panic("nkc: field value outside int32 range cannot be interned")
	}
}

// fddChunkBits sizes arena chunks at 4096 nodes.
const fddChunkBits = 12

const fddChunkSize = 1 << fddChunkBits

// fddArena allocates FDD nodes from chunked slabs. Chunks are never
// grown in place, so &chunk[i] stays valid forever; nodes are therefore
// addressable both by pointer (the API the combinators and extraction
// use) and by dense id (chunk = id >> fddChunkBits, slot = id & mask).
type fddArena struct {
	chunks [][]FDD
	n      int
}

// alloc returns a zeroed node carrying the next dense id.
func (a *fddArena) alloc() *FDD {
	ci := a.n >> fddChunkBits
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]FDD, fddChunkSize))
	}
	d := &a.chunks[ci][a.n&(fddChunkSize-1)]
	d.id = a.n
	a.n++
	return d
}

// bytes returns the slab bytes reserved so far (whole chunks, the
// figure CacheStats reports as ArenaBytes).
func (a *fddArena) bytes() int64 {
	return int64(len(a.chunks)) * fddChunkSize * int64(unsafe.Sizeof(FDD{}))
}
