package nkc

import (
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/stateful"
)

// compileAllApps is the correctness set for the sharded/interned compile
// path: the five paper applications, the ring, and the scale-family
// workloads at test-sized parameters (same shapes as the cap-2000 and
// 125-switch benchmarks, smaller counters).
func compileAllApps() []apps.App {
	out := apps.All()
	out = append(out, apps.Ring(3), apps.IDSFatTree(4), apps.BandwidthCap(40))
	return out
}

// TestCompileAllDeterministicAcrossWorkers is the acceptance property for
// the in-compiler sharding: CompileAll over every reachable state is
// byte-identical at 1, 2, 4, and 8 workers. Workers meet only through
// the SharedCache, whose publish step canonicalizes per signature, so
// scheduling cannot leak into the output.
func TestCompileAllDeterministicAcrossWorkers(t *testing.T) {
	for _, a := range compileAllApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			refPC, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refPC.CompileAll(states, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				pc, err := NewProgramCompiler(a.Prog.Cmd, a.Topo, NewSharedCache())
				if err != nil {
					t.Fatal(err)
				}
				got, err := pc.CompileAll(states, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for i := range states {
					if got[i].String() != ref[i].String() {
						t.Fatalf("workers=%d: state %v tables differ from single-worker build\ngot:\n%s\nwant:\n%s",
							workers, states[i], got[i].String(), ref[i].String())
					}
				}
			}
		})
	}
}

// TestProgramCacheMatchesScratchAndDNF pins the full interned path — a
// ProgramCache's persistent FDD context, arena, dense interners, and
// structural segment memo, shared across two builds of the same program —
// to the oracles: on every reachable state of every application the
// cached compiler's tables are byte-equal to a fresh per-state CompileFDD
// (no cross-state or cross-build sharing) and, on the five paper
// applications, rule-count-equal to the DNF reference backend. (Off the
// paper set the FDD backend can be strictly more compact — ring-3's
// hash-consed paths merge a rule the DNF normal form keeps — so the
// count oracle matches the scope of TestIncrementalMatchesDNFRuleCounts.)
func TestProgramCacheMatchesScratchAndDNF(t *testing.T) {
	paperApps := map[string]bool{}
	for _, a := range apps.All() {
		paperApps[a.Name] = true
	}
	cache := NewProgramCache()
	for _, a := range compileAllApps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			states, _, err := a.Prog.ReachableStates()
			if err != nil {
				t.Fatal(err)
			}
			// Two passes through the cache: the second resolves entirely from
			// the interned memos and must reproduce the first byte-for-byte.
			for pass := 0; pass < 2; pass++ {
				root, _, err := cache.Acquire(BackendFDD, a.Prog.Cmd, a.Topo)
				if err != nil {
					t.Fatal(err)
				}
				tables, err := root.CompileAll(states, 1)
				cache.Release()
				if err != nil {
					t.Fatal(err)
				}
				for i, k := range states {
					pol := stateful.Project(a.Prog.Cmd, k)
					scratch, err := CompileFDD(pol, a.Topo)
					if err != nil {
						t.Fatalf("state %v: scratch: %v", k, err)
					}
					if tables[i].String() != scratch.String() {
						t.Fatalf("pass %d state %v: cached tables differ from scratch CompileFDD\ncached:\n%s\nscratch:\n%s",
							pass, k, tables[i].String(), scratch.String())
					}
					if paperApps[a.Name] {
						dnf, err := CompileDNF(pol, a.Topo)
						if err != nil {
							t.Fatalf("state %v: DNF: %v", k, err)
						}
						if got, want := tables[i].TotalRules(), dnf.TotalRules(); got != want {
							t.Fatalf("pass %d state %v: %d rules interned vs %d DNF", pass, k, got, want)
						}
					}
				}
			}
		})
	}
}
