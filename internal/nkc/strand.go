package nkc

import (
	"fmt"

	"eventnet/internal/netkat"
)

// Strand is one end-to-end alternative of a policy: an alternating
// sequence of link-free segments (in path normal form) and links, with
// len(Segments) == len(Links)+1. Identity segments fill gaps where links
// are adjacent or at the ends.
type Strand struct {
	Segments []PathSet
	Links    []netkat.Link
}

// element is an intermediate item during strand extraction.
type element struct {
	isLink bool
	link   netkat.Link
	pol    netkat.Policy
}

// maxStrands bounds the union-over-sequence distribution to keep compile
// time predictable on adversarial inputs.
const maxStrands = 100000

// ExtractStrands distributes union over sequencing to rewrite a policy as
// a sum of strands. Star is supported only over link-free subpolicies
// (the fragment used by every program in the paper; full NetKAT automata
// would be needed for links under star).
func ExtractStrands(p netkat.Policy) ([]Strand, error) {
	raw, err := elems(p)
	if err != nil {
		return nil, err
	}
	strands := make([]Strand, 0, len(raw))
	for _, es := range raw {
		s, err := assemble(es)
		if err != nil {
			return nil, err
		}
		strands = append(strands, s)
	}
	return strands, nil
}

// elems returns the sum-of-sequences form: one element slice per strand.
func elems(p netkat.Policy) ([][]element, error) {
	switch q := p.(type) {
	case netkat.Filter, netkat.Assign:
		return [][]element{{{pol: p}}}, nil
	case netkat.Link:
		return [][]element{{{isLink: true, link: q}}}, nil
	case netkat.Star:
		if len(netkat.Links(q)) > 0 {
			return nil, fmt.Errorf("nkc: star over a policy containing links is outside the supported fragment")
		}
		return [][]element{{{pol: p}}}, nil
	case netkat.Union:
		l, err := elems(q.L)
		if err != nil {
			return nil, err
		}
		r, err := elems(q.R)
		if err != nil {
			return nil, err
		}
		out := append(l, r...)
		if len(out) > maxStrands {
			return nil, fmt.Errorf("nkc: policy expands to more than %d strands", maxStrands)
		}
		return out, nil
	case netkat.Seq:
		l, err := elems(q.L)
		if err != nil {
			return nil, err
		}
		r, err := elems(q.R)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > maxStrands {
			return nil, fmt.Errorf("nkc: policy expands to more than %d strands", maxStrands)
		}
		out := make([][]element, 0, len(l)*len(r))
		for _, a := range l {
			for _, b := range r {
				seq := make([]element, 0, len(a)+len(b))
				seq = append(seq, a...)
				seq = append(seq, b...)
				out = append(out, seq)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("nkc: unknown policy node %T", p)
	}
}

// assemble coalesces consecutive link-free elements into segments and
// inserts identity segments around links.
func assemble(es []element) (Strand, error) {
	var s Strand
	cur := netkat.ID()
	curEmpty := true
	flush := func() error {
		var ps PathSet
		var err error
		if curEmpty {
			ps = Identity()
		} else {
			ps, err = FromPolicy(cur)
			if err != nil {
				return err
			}
		}
		s.Segments = append(s.Segments, ps)
		cur = netkat.ID()
		curEmpty = true
		return nil
	}
	for _, e := range es {
		if e.isLink {
			if err := flush(); err != nil {
				return Strand{}, err
			}
			s.Links = append(s.Links, e.link)
		} else {
			if curEmpty {
				cur = e.pol
				curEmpty = false
			} else {
				cur = netkat.Seq{L: cur, R: e.pol}
			}
		}
	}
	if err := flush(); err != nil {
		return Strand{}, err
	}
	return s, nil
}
