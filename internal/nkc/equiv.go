package nkc

import (
	"sort"

	"eventnet/internal/netkat"
)

// Equivalence checking for the link-free NetKAT fragment.
//
// NetKAT over finite tests and assignments has the finite model property:
// a policy's behavior on a packet depends only on which of the finitely
// many mentioned constants each field equals (or none of them). Checking
// equality on one representative packet per equivalence class is therefore
// a sound and complete decision procedure for link-free policies — the
// "formal reasoning for Stateful NetKAT" direction the paper lists as
// future work, restricted to the per-state configurations.

// freshOffset is added to the largest mentioned value to obtain a
// representative "none of the mentioned constants" value per field.
const freshOffset = 1

// mentioned collects, per field, the sorted set of constants a policy
// tests or assigns, plus the port/switch constants.
func mentioned(ps ...netkat.Policy) map[string][]int {
	vals := map[string]map[int]bool{}
	addVal := func(f string, v int) {
		if vals[f] == nil {
			vals[f] = map[int]bool{}
		}
		vals[f][v] = true
	}
	var walkPred func(netkat.Pred)
	walkPred = func(p netkat.Pred) {
		switch q := p.(type) {
		case netkat.Test:
			addVal(q.Field, q.Value)
		case netkat.Not:
			walkPred(q.P)
		case netkat.And:
			walkPred(q.L)
			walkPred(q.R)
		case netkat.Or:
			walkPred(q.L)
			walkPred(q.R)
		}
	}
	var walk func(netkat.Policy)
	walk = func(p netkat.Policy) {
		switch q := p.(type) {
		case netkat.Filter:
			walkPred(q.P)
		case netkat.Assign:
			addVal(q.Field, q.Value)
		case netkat.Union:
			walk(q.L)
			walk(q.R)
		case netkat.Seq:
			walk(q.L)
			walk(q.R)
		case netkat.Star:
			walk(q.P)
		case netkat.Link:
			addVal(netkat.FieldSw, q.Src.Switch)
			addVal(netkat.FieldSw, q.Dst.Switch)
			addVal(netkat.FieldPt, q.Src.Port)
			addVal(netkat.FieldPt, q.Dst.Port)
		}
	}
	for _, p := range ps {
		walk(p)
	}
	out := map[string][]int{}
	for f, m := range vals {
		var vs []int
		for v := range m {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		out[f] = vs
	}
	return out
}

// representatives returns, per field, the mentioned constants plus one
// fresh value (the class of "everything else").
func representatives(ps ...netkat.Policy) map[string][]int {
	m := mentioned(ps...)
	// Ensure sw/pt are present even if never tested.
	if _, ok := m[netkat.FieldSw]; !ok {
		m[netkat.FieldSw] = nil
	}
	if _, ok := m[netkat.FieldPt]; !ok {
		m[netkat.FieldPt] = nil
	}
	out := map[string][]int{}
	for f, vs := range m {
		fresh := freshOffset
		if len(vs) > 0 {
			fresh = vs[len(vs)-1] + freshOffset
		}
		out[f] = append(append([]int{}, vs...), fresh)
	}
	return out
}

// maxEquivPackets bounds the representative-packet enumeration.
const maxEquivPackets = 200000

// Equivalent decides semantic equality of two link-free policies by
// evaluating both on one representative located packet per equivalence
// class of the finite model. It returns a distinguishing packet when the
// policies differ.
func Equivalent(p, q netkat.Policy) (bool, *netkat.LocatedPacket, error) {
	if err := netkat.Validate(p); err != nil {
		return false, nil, err
	}
	if err := netkat.Validate(q); err != nil {
		return false, nil, err
	}
	reps := representatives(p, q)
	fields := make([]string, 0, len(reps))
	for f := range reps {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	total := 1
	for _, f := range fields {
		total *= len(reps[f])
		if total > maxEquivPackets {
			return false, nil, errTooManyClasses
		}
	}

	idx := make([]int, len(fields))
	for {
		lp := netkat.LocatedPacket{Pkt: netkat.Packet{}}
		for i, f := range fields {
			v := reps[f][idx[i]]
			switch f {
			case netkat.FieldSw:
				lp.Loc.Switch = v
			case netkat.FieldPt:
				lp.Loc.Port = v
			default:
				lp.Pkt[f] = v
			}
		}
		if !netkat.EquivOn(p, q, []netkat.LocatedPacket{lp}) {
			return false, &lp, nil
		}
		// Advance the odometer.
		i := 0
		for ; i < len(fields); i++ {
			idx[i]++
			if idx[i] < len(reps[fields[i]]) {
				break
			}
			idx[i] = 0
		}
		if i == len(fields) {
			return true, nil, nil
		}
	}
}

type equivError string

func (e equivError) Error() string { return string(e) }

// errTooManyClasses is returned when the finite model exceeds the
// enumeration bound.
const errTooManyClasses = equivError("nkc: too many equivalence classes for exact equivalence checking")

// Simplify rewrites a policy with the KAT identities that the paper's
// equational theory licenses: units and annihilators for union and
// sequence, idempotent union, star of a predicate collapsing to true, and
// double negation. The result is semantically equal to the input (checked
// by property tests against Equivalent).
func Simplify(p netkat.Policy) netkat.Policy {
	switch q := p.(type) {
	case netkat.Filter:
		return netkat.Filter{P: simplifyPred(q.P)}
	case netkat.Assign:
		return q
	case netkat.Union:
		l, r := Simplify(q.L), Simplify(q.R)
		if isDrop(l) {
			return r
		}
		if isDrop(r) {
			return l
		}
		if l.String() == r.String() {
			return l
		}
		return netkat.Union{L: l, R: r}
	case netkat.Seq:
		l, r := Simplify(q.L), Simplify(q.R)
		if isDrop(l) || isDrop(r) {
			return netkat.Drop()
		}
		if isID(l) {
			return r
		}
		if isID(r) {
			return l
		}
		return netkat.Seq{L: l, R: r}
	case netkat.Star:
		inner := Simplify(q.P)
		if isDrop(inner) || isID(inner) {
			return netkat.ID()
		}
		// A pure test under star is absorbed: a* = 1 + a + a;a + ... = 1.
		if f, ok := inner.(netkat.Filter); ok {
			_ = f
			return netkat.ID()
		}
		if s, ok := inner.(netkat.Star); ok {
			return s // p** = p*
		}
		return netkat.Star{P: inner}
	case netkat.Link:
		return q
	default:
		return p
	}
}

func simplifyPred(p netkat.Pred) netkat.Pred {
	switch q := p.(type) {
	case netkat.Not:
		inner := simplifyPred(q.P)
		switch r := inner.(type) {
		case netkat.True:
			return netkat.False{}
		case netkat.False:
			return netkat.True{}
		case netkat.Not:
			return r.P // double negation
		}
		return netkat.Not{P: inner}
	case netkat.And:
		l, r := simplifyPred(q.L), simplifyPred(q.R)
		if isFalseP(l) || isFalseP(r) {
			return netkat.False{}
		}
		if isTrueP(l) {
			return r
		}
		if isTrueP(r) {
			return l
		}
		return netkat.And{L: l, R: r}
	case netkat.Or:
		l, r := simplifyPred(q.L), simplifyPred(q.R)
		if isTrueP(l) || isTrueP(r) {
			return netkat.True{}
		}
		if isFalseP(l) {
			return r
		}
		if isFalseP(r) {
			return l
		}
		return netkat.Or{L: l, R: r}
	default:
		return p
	}
}

func isDrop(p netkat.Policy) bool {
	f, ok := p.(netkat.Filter)
	return ok && isFalseP(f.P)
}

func isID(p netkat.Policy) bool {
	f, ok := p.(netkat.Filter)
	return ok && isTrueP(f.P)
}

func isTrueP(p netkat.Pred) bool { _, ok := p.(netkat.True); return ok }

func isFalseP(p netkat.Pred) bool { _, ok := p.(netkat.False); return ok }
