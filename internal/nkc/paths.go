package nkc

import (
	"fmt"
	"sort"
	"strings"

	"eventnet/internal/netkat"
)

// Path is one summand of a link-free policy in path normal form: if Cond
// holds of the incoming packet, emit the packet with Acts applied. Acts is
// the final-value map of the assignments (assignments of constants
// commute into a single simultaneous substitution).
type Path struct {
	Cond *netkat.Conj
	Acts map[string]int
}

// Key returns a canonical identity for the path.
func (p Path) Key() string {
	fs := make([]string, 0, len(p.Acts))
	for f := range p.Acts {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	var b strings.Builder
	b.WriteString(p.Cond.Key())
	b.WriteString("=>")
	for _, f := range fs {
		fmt.Fprintf(&b, "%s<-%d;", f, p.Acts[f])
	}
	return b.String()
}

// Clone returns an independent copy.
func (p Path) Clone() Path {
	acts := make(map[string]int, len(p.Acts))
	for f, v := range p.Acts {
		acts[f] = v
	}
	return Path{Cond: p.Cond.Clone(), Acts: acts}
}

// Apply runs the path on a located packet, reporting ok=false if the
// condition fails.
func (p Path) Apply(lp netkat.LocatedPacket) (netkat.LocatedPacket, bool) {
	if !p.Cond.Eval(lp) {
		return netkat.LocatedPacket{}, false
	}
	out := netkat.LocatedPacket{Pkt: lp.Pkt.Clone(), Loc: lp.Loc}
	for f, v := range p.Acts {
		switch f {
		case netkat.FieldPt:
			out.Loc.Port = v
		case netkat.FieldSw:
			// Rejected by Validate; defensive.
			out.Loc.Switch = v
		default:
			out.Pkt[f] = v
		}
	}
	return out, true
}

// PathSet is a link-free policy in path normal form (a set of Paths whose
// union is the policy's semantics).
type PathSet struct {
	Paths []Path
}

// starBound caps Star fixpoint iteration in path normal form.
const starBound = 1000

// Identity returns the path set of the identity policy.
func Identity() PathSet {
	return PathSet{Paths: []Path{{Cond: netkat.NewConj(), Acts: map[string]int{}}}}
}

// FromPred converts a predicate to path normal form.
func FromPred(p netkat.Pred) PathSet {
	var ps []Path
	for _, c := range DNF(p) {
		ps = append(ps, Path{Cond: c, Acts: map[string]int{}})
	}
	return PathSet{Paths: ps}
}

// FromPolicy converts a link-free policy to path normal form. It returns
// an error if the policy contains a Link or a non-stabilizing Star.
func FromPolicy(p netkat.Policy) (PathSet, error) {
	switch q := p.(type) {
	case netkat.Filter:
		return FromPred(q.P), nil
	case netkat.Assign:
		return PathSet{Paths: []Path{{
			Cond: netkat.NewConj(),
			Acts: map[string]int{q.Field: q.Value},
		}}}, nil
	case netkat.Union:
		l, err := FromPolicy(q.L)
		if err != nil {
			return PathSet{}, err
		}
		r, err := FromPolicy(q.R)
		if err != nil {
			return PathSet{}, err
		}
		return UnionPS(l, r), nil
	case netkat.Seq:
		l, err := FromPolicy(q.L)
		if err != nil {
			return PathSet{}, err
		}
		r, err := FromPolicy(q.R)
		if err != nil {
			return PathSet{}, err
		}
		return SeqPS(l, r), nil
	case netkat.Star:
		inner, err := FromPolicy(q.P)
		if err != nil {
			return PathSet{}, err
		}
		return StarPS(inner)
	case netkat.Link:
		return PathSet{}, fmt.Errorf("nkc: link %v inside a link-free context", q)
	default:
		return PathSet{}, fmt.Errorf("nkc: unknown policy node %T", p)
	}
}

// UnionPS unions two path sets, deduplicating identical paths.
func UnionPS(a, b PathSet) PathSet {
	seen := map[string]bool{}
	var out []Path
	for _, p := range append(append([]Path{}, a.Paths...), b.Paths...) {
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return PathSet{Paths: out}
}

// composePaths sequences two paths: the second path's condition is
// evaluated on the output of the first, so its literals are checked
// against the first path's assignments where those apply. Reports
// ok=false if the composition is infeasible.
func composePaths(p, q Path) (Path, bool) {
	cond := p.Cond.Clone()
	// Literals of q.Cond refer to post-p values.
	for _, f := range q.Cond.EqFields() {
		v, _ := q.Cond.Eq(f)
		if w, ok := p.Acts[f]; ok {
			if w != v {
				return Path{}, false
			}
			continue
		}
		if !cond.AddEq(f, v) {
			return Path{}, false
		}
	}
	for _, f := range q.Cond.NeqFields() {
		for _, v := range q.Cond.Neq(f) {
			if w, ok := p.Acts[f]; ok {
				if w == v {
					return Path{}, false
				}
				continue
			}
			if !cond.AddNeq(f, v) {
				return Path{}, false
			}
		}
	}
	acts := make(map[string]int, len(p.Acts)+len(q.Acts))
	for f, v := range p.Acts {
		acts[f] = v
	}
	for f, v := range q.Acts {
		acts[f] = v
	}
	return Path{Cond: cond, Acts: acts}, true
}

// SeqPS sequences two path sets (Kleisli composition of the relations).
func SeqPS(a, b PathSet) PathSet {
	seen := map[string]bool{}
	var out []Path
	for _, p := range a.Paths {
		for _, q := range b.Paths {
			r, ok := composePaths(p, q)
			if !ok {
				continue
			}
			k := r.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return PathSet{Paths: out}
}

// StarPS computes the reflexive-transitive closure of a path set by
// fixpoint iteration; the literal/assignment universe is finite so the
// iteration terminates for every policy in the supported fragment.
func StarPS(p PathSet) (PathSet, error) {
	acc := Identity()
	for i := 0; i < starBound; i++ {
		next := UnionPS(acc, SeqPS(acc, p))
		if len(next.Paths) == len(acc.Paths) {
			return acc, nil
		}
		acc = next
	}
	return PathSet{}, fmt.Errorf("nkc: star did not stabilize within %d iterations", starBound)
}

// Eval applies the path set to a located packet, returning the output set
// in canonical order. Used by property tests against netkat.Eval.
func (ps PathSet) Eval(lp netkat.LocatedPacket) []netkat.LocatedPacket {
	seen := map[string]netkat.LocatedPacket{}
	for _, p := range ps.Paths {
		if out, ok := p.Apply(lp); ok {
			seen[out.Key()] = out
		}
	}
	outs := make([]netkat.LocatedPacket, 0, len(seen))
	for _, v := range seen {
		outs = append(outs, v)
	}
	netkat.SortLocated(outs)
	return outs
}
