// Package nkc is the NetKAT compiler: it translates the link-annotated
// NetKAT policies of this repository into per-switch prioritized flow
// tables. It substitutes for the Frenetic compiler used by the paper.
//
// The package provides two backends behind the Compile/CompileWith
// selector (see docs/ARCHITECTURE.md for the full comparison and the
// equivalence-testing strategy):
//
// The default FDD backend (fdd.go, fdd_table.go) normalizes link-free
// policies into hash-consed, memoized forwarding decision diagrams;
// strands are split only where links force it, and per-switch tables are
// extracted from one diagram per switch, whose root-leaf paths partition
// the packet space — so multicast merging and overlap resolution are
// structural rather than iterative.
//
// The reference DNF backend (CompileDNF) is the original pipeline:
//
//  1. predicates -> disjunctive normal form over equality/inequality
//     literals (dnf.go);
//  2. link-free policies -> path normal form: a sum of (conjunction;
//     assignment) paths (paths.go);
//  3. full policies -> strands: alternating link-free segments and links,
//     obtained by distributing union over sequence (strand.go);
//  4. strands -> per-switch hop rules by symbolic execution, followed by
//     multicast merging and overlap resolution (compile.go).
//
// Correctness is established by property tests comparing both backends
// against each other and against the reference evaluator in
// internal/netkat (fdd_test.go, nkc_test.go, equiv_test.go).
package nkc

import "eventnet/internal/netkat"

// DNF converts a predicate into disjunctive normal form: a slice of
// satisfiable conjunctions whose disjunction is equivalent to p. The empty
// slice denotes false; a single empty conjunction denotes true.
func DNF(p netkat.Pred) []*netkat.Conj {
	return dnf(p, false)
}

// dnf converts p (negated if neg) into DNF.
func dnf(p netkat.Pred, neg bool) []*netkat.Conj {
	switch q := p.(type) {
	case netkat.True:
		if neg {
			return nil
		}
		return []*netkat.Conj{netkat.NewConj()}
	case netkat.False:
		if neg {
			return []*netkat.Conj{netkat.NewConj()}
		}
		return nil
	case netkat.Test:
		c := netkat.NewConj()
		if neg {
			c.AddNeq(q.Field, q.Value)
		} else {
			c.AddEq(q.Field, q.Value)
		}
		return []*netkat.Conj{c}
	case netkat.Not:
		return dnf(q.P, !neg)
	case netkat.And:
		if neg {
			// ¬(a ∧ b) = ¬a ∨ ¬b
			return orDNF(dnf(q.L, true), dnf(q.R, true))
		}
		return andDNF(dnf(q.L, false), dnf(q.R, false))
	case netkat.Or:
		if neg {
			// ¬(a ∨ b) = ¬a ∧ ¬b
			return andDNF(dnf(q.L, true), dnf(q.R, true))
		}
		return orDNF(dnf(q.L, false), dnf(q.R, false))
	default:
		panic("nkc: unknown predicate node")
	}
}

// orDNF unions two DNFs, deduplicating by canonical key.
func orDNF(a, b []*netkat.Conj) []*netkat.Conj {
	seen := map[string]bool{}
	var out []*netkat.Conj
	for _, c := range append(append([]*netkat.Conj{}, a...), b...) {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// andDNF distributes conjunction over two DNFs, dropping contradictions.
func andDNF(a, b []*netkat.Conj) []*netkat.Conj {
	seen := map[string]bool{}
	var out []*netkat.Conj
	for _, x := range a {
		for _, y := range b {
			m := x.Clone()
			if !m.MergeWith(y) {
				continue
			}
			k := m.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, m)
			}
		}
	}
	return out
}
