package nkc

import (
	"fmt"
	"sync"

	"eventnet/internal/flowtable"
)

// CacheStats reports compiler-cache effectiveness for one compilation run
// (summed across a worker pool by internal/ets).
type CacheStats struct {
	// TableHits/TableMisses count whole-configuration lookups keyed by
	// guard signature: a hit means a state's entire table set was reused
	// from an earlier state with the same projected policy.
	TableHits, TableMisses int64
	// SegmentHits/SegmentMisses count per-segment FDD lookups keyed by
	// (segment, guard signature): a hit means a link-free strand segment
	// skipped ToFDD entirely because no guard inside it changed.
	SegmentHits, SegmentMisses int64
	// Strands is the number of distinct symbolic strand executions
	// performed (the hop-cache population); FDDNodes is the hash-consed
	// node-store size. Both grow monotonically and are bounded by the
	// program's structural variety, not by the number of states compiled —
	// the eviction-free growth bound checked by the cache tests.
	Strands  int64
	FDDNodes int64
	// InternEntries is the total interner population backing the
	// compiler's int-keyed caches: guard signatures, segment keys, and
	// per-context field/action atoms. ArenaBytes is the slab memory
	// reserved by the FDD node arena; ArenaHighWater is the largest
	// arena seen (across cache generations, when a ProgramCache resets
	// wholesale). All three are store sizes, not counters.
	InternEntries  int64
	ArenaBytes     int64
	ArenaHighWater int64
}

// Add merges per-worker stats into s: hit/miss counters are disjoint
// and sum, while Strands, FDDNodes, InternEntries, and the arena fields
// are per-context *store sizes* — worker contexts duplicate shared
// structure rather than partition it — so merging takes the largest
// store instead of summing duplicates.
func (s *CacheStats) Add(o CacheStats) {
	s.TableHits += o.TableHits
	s.TableMisses += o.TableMisses
	s.SegmentHits += o.SegmentHits
	s.SegmentMisses += o.SegmentMisses
	if o.Strands > s.Strands {
		s.Strands = o.Strands
	}
	if o.FDDNodes > s.FDDNodes {
		s.FDDNodes = o.FDDNodes
	}
	if o.InternEntries > s.InternEntries {
		s.InternEntries = o.InternEntries
	}
	if o.ArenaBytes > s.ArenaBytes {
		s.ArenaBytes = o.ArenaBytes
	}
	if o.ArenaHighWater > s.ArenaHighWater {
		s.ArenaHighWater = o.ArenaHighWater
	}
}

// String renders the stats compactly.
func (s CacheStats) String() string {
	return fmt.Sprintf("tables %d/%d hit, segments %d/%d hit, %d strands, %d fdd nodes, %d interned, %dKB arena",
		s.TableHits, s.TableHits+s.TableMisses,
		s.SegmentHits, s.SegmentHits+s.SegmentMisses,
		s.Strands, s.FDDNodes, s.InternEntries, s.ArenaBytes/1024)
}

// SharedCache is a concurrency-safe cache of compiled table sets, keyed
// by *interned* guard-signature id: the fork-shared Interner assigns one
// dense id per distinct signature, so cross-worker sharing costs one
// integer map lookup instead of hashing a signature string per state.
// One FDDCtx is single-goroutine by design; a pool of per-worker
// compilers instead shares results at the table level through this
// cache, which is the compiler-pool-safe layer of the incremental
// pipeline: workers publish immutable flowtable.Tables values and race
// only on sync.Map operations. A SharedCache is scoped to one
// (program, topology) pair — internal/ets creates a fresh one per build.
type SharedCache struct {
	tables sync.Map // interned guard-signature id (uint32) -> flowtable.Tables (immutable)
}

// NewSharedCache returns an empty shared cache.
func NewSharedCache() *SharedCache { return &SharedCache{} }

// lookup returns the cached tables for an interned signature id.
func (sc *SharedCache) lookup(sig uint32) (flowtable.Tables, bool) {
	v, ok := sc.tables.Load(sig)
	if !ok {
		return nil, false
	}
	return v.(flowtable.Tables), true
}

// publish stores tables for an interned signature id, returning the
// canonical value (the first publication wins, so concurrent workers
// converge on one shared instance).
func (sc *SharedCache) publish(sig uint32, t flowtable.Tables) flowtable.Tables {
	v, _ := sc.tables.LoadOrStore(sig, t)
	return v.(flowtable.Tables)
}

// Len returns the number of distinct configurations cached.
func (sc *SharedCache) Len() int {
	n := 0
	sc.tables.Range(func(any, any) bool { n++; return true })
	return n
}
