package nkc

import (
	"math/rand"
	"testing"

	"eventnet/internal/netkat"
)

func mustEquiv(t *testing.T, p, q netkat.Policy, want bool) {
	t.Helper()
	got, witness, err := Equivalent(p, q)
	if err != nil {
		t.Fatalf("Equivalent(%v, %v): %v", p, q, err)
	}
	if got != want {
		t.Fatalf("Equivalent(%v, %v) = %v (witness %v), want %v", p, q, got, witness, want)
	}
}

// TestEquivalentKATAxioms checks the KAT identities exactly (not just on
// random packets).
func TestEquivalentKATAxioms(t *testing.T) {
	a := netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}
	b := netkat.Filter{P: netkat.Test{Field: "y", Value: 2}}
	asn := netkat.Assign{Field: "x", Value: 2}

	mustEquiv(t, netkat.Union{L: a, R: b}, netkat.Union{L: b, R: a}, true)
	mustEquiv(t, netkat.Union{L: a, R: a}, a, true)
	mustEquiv(t, netkat.Seq{L: netkat.ID(), R: asn}, asn, true)
	mustEquiv(t, netkat.Seq{L: netkat.Drop(), R: asn}, netkat.Drop(), true)
	mustEquiv(t,
		netkat.Seq{L: asn, R: netkat.Union{L: a, R: b}},
		netkat.Union{L: netkat.Seq{L: asn, R: a}, R: netkat.Seq{L: asn, R: b}}, true)
	// PA axiom: x<-1; x=1 ≡ x<-1.
	mustEquiv(t,
		netkat.Seq{L: netkat.Assign{Field: "x", Value: 1}, R: netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}},
		netkat.Assign{Field: "x", Value: 1}, true)
	// x=1; x<-1 ≡ x=1.
	mustEquiv(t,
		netkat.Seq{L: netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}, R: netkat.Assign{Field: "x", Value: 1}},
		netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}, true)
	// Star unrolling.
	p := netkat.Union{L: asn, R: netkat.Assign{Field: "x", Value: 3}}
	mustEquiv(t, netkat.Star{P: p}, netkat.Union{L: netkat.ID(), R: netkat.Seq{L: p, R: netkat.Star{P: p}}}, true)
}

// TestEquivalentDistinguishes: the fresh-value classes catch differences
// outside the mentioned constants.
func TestEquivalentDistinguishes(t *testing.T) {
	// x=1 vs !(x=2): differ on x = anything-else.
	p := netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}
	q := netkat.Filter{P: netkat.Not{P: netkat.Test{Field: "x", Value: 2}}}
	got, witness, err := Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("x=1 and !(x=2) judged equivalent")
	}
	if witness == nil {
		t.Fatal("no witness")
	}
	if p.P.Eval(*witness) == q.P.Eval(*witness) {
		t.Fatalf("witness %v does not distinguish", witness)
	}
	// Assignments to different values.
	mustEquiv(t, netkat.Assign{Field: "x", Value: 1}, netkat.Assign{Field: "x", Value: 2}, false)
	// Port assignment vs field assignment.
	mustEquiv(t, netkat.Assign{Field: netkat.FieldPt, Value: 1}, netkat.Assign{Field: "x", Value: 1}, false)
}

// TestEquivalentAgreesWithRandomEval: on random link-free policies, the
// decision procedure agrees with sampling (sampling can only refute, so
// any sampled difference must be found by Equivalent too).
func TestEquivalentAgreesWithRandomEval(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 150; i++ {
		p := randLinkFree(r, 3)
		q := randLinkFree(r, 3)
		eq, _, err := Equivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sampledEqual := true
		for j := 0; j < 100; j++ {
			if !netkat.EquivOn(p, q, []netkat.LocatedPacket{randLP(r)}) {
				sampledEqual = false
				break
			}
		}
		if !sampledEqual && eq {
			t.Fatalf("sampling refuted but Equivalent accepted: %v vs %v", p, q)
		}
	}
}

// TestSimplifyPreservesSemantics: Simplify is semantics-preserving on
// random link-free policies (checked with the exact decision procedure)
// and never grows the term.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for i := 0; i < 300; i++ {
		p := randLinkFree(r, 3)
		s := Simplify(p)
		eq, witness, err := Equivalent(p, s)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("Simplify changed semantics of %v -> %v (witness %v)", p, s, witness)
		}
		if len(s.String()) > len(p.String()) {
			t.Fatalf("Simplify grew %v -> %v", p, s)
		}
	}
}

// TestSimplifyIdentities spot-checks the rewrite rules.
func TestSimplifyIdentities(t *testing.T) {
	a := netkat.Filter{P: netkat.Test{Field: "x", Value: 1}}
	cases := []struct {
		in   netkat.Policy
		want string
	}{
		{netkat.Union{L: netkat.Drop(), R: a}, "x=1"},
		{netkat.Seq{L: netkat.ID(), R: a}, "x=1"},
		{netkat.Seq{L: netkat.Drop(), R: a}, "false"},
		{netkat.Star{P: a}, "true"},
		{netkat.Star{P: netkat.Star{P: netkat.Assign{Field: "x", Value: 1}}}, "x<-1*"},
		{netkat.Filter{P: netkat.Not{P: netkat.Not{P: netkat.Test{Field: "x", Value: 1}}}}, "x=1"},
		{netkat.Union{L: a, R: a}, "x=1"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
