// Package syntax provides a concrete syntax for Stateful NetKAT
// (Figure 4 of the paper) with a lexer, a recursive-descent parser, and a
// printer. The ASCII rendering of the paper's notation is:
//
//	test        f=4, f!=4, sw=1, pt=2, state(0)=1, state=[0,1]
//	assignment  f<-4, pt<-1
//	link        (1:1)=>(4:1)
//	event link  (1:1)=>(4:1)<state(0)<-1>  or  ...<state<-[1]>
//	operators   !a, a & b, a | b, p; q, p + q, p*
//	host names  H1, H2, ... (sugar for 101, 102, ...)
//
// The printer emits exactly the syntax stateful.Cmd.String produces, and
// the parser accepts it back: parse-print round trips are property-tested.
package syntax

import (
	"fmt"
	"strconv"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLAngle   // <
	TokRAngle   // >
	TokEq       // =
	TokNeq      // !=
	TokNot      // !
	TokAssign   // <-
	TokLink     // =>
	TokSemi     // ;
	TokPlus     // +
	TokStar     // *
	TokAnd      // &
	TokOr       // |
	TokColon    // :
	TokComma    // ,
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLAngle:
		return "'<'"
	case TokRAngle:
		return "'>'"
	case TokEq:
		return "'='"
	case TokNeq:
		return "'!='"
	case TokNot:
		return "'!'"
	case TokAssign:
		return "'<-'"
	case TokLink:
		return "'=>'"
	case TokSemi:
		return "';'"
	case TokPlus:
		return "'+'"
	case TokStar:
		return "'*'"
	case TokAnd:
		return "'&'"
	case TokOr:
		return "'|'"
	case TokColon:
		return "':'"
	case TokComma:
		return "','"
	default:
		return "?"
	}
}

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int
	Pos  int // byte offset
}

// Lex tokenizes the input. Comments run from '#' to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			n, err := strconv.Atoi(src[i:j])
			if err != nil {
				return nil, fmt.Errorf("syntax: bad integer at offset %d: %v", i, err)
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[i:j], Int: n, Pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i:j], Pos: i})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == "<-":
				toks = append(toks, Token{Kind: TokAssign, Text: two, Pos: i})
				i += 2
			case two == "=>":
				toks = append(toks, Token{Kind: TokLink, Text: two, Pos: i})
				i += 2
			case two == "!=":
				toks = append(toks, Token{Kind: TokNeq, Text: two, Pos: i})
				i += 2
			default:
				kind, ok := map[byte]TokKind{
					'(': TokLParen, ')': TokRParen, '[': TokLBracket, ']': TokRBracket,
					'<': TokLAngle, '>': TokRAngle, '=': TokEq, '!': TokNot,
					';': TokSemi, '+': TokPlus, '*': TokStar, '&': TokAnd,
					'|': TokOr, ':': TokColon, ',': TokComma,
				}[c]
				if !ok {
					return nil, fmt.Errorf("syntax: unexpected character %q at offset %d", c, i)
				}
				toks = append(toks, Token{Kind: kind, Text: string(c), Pos: i})
				i++
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: len(src)})
	return toks, nil
}
