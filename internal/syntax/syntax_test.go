package syntax

import (
	"math/rand"
	"testing"

	"eventnet/internal/apps"
	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
)

func mustParse(t *testing.T, src string) stateful.Cmd {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return c
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"true", "true"},
		{"pt=2", "pt=2"},
		{"dst!=4", "!dst=4"},
		{"pt<-1", "pt<-1"},
		{"pt=2 & dst=104", "pt=2 & dst=104"},
		{"a=1 | b=2", "a=1 | b=2"},
		{"!(a=1 & b=2)", "!(a=1 & b=2)"},
		{"pt=2; pt<-1", "pt=2; pt<-1"},
		{"a=1 + b=2", "a=1 + b=2"},
		{"(1:1)=>(4:1)", "(1:1)=>(4:1)"},
		{"(1:1)=>(4:1)<state(0)<-1>", "(1:1)=>(4:1)<state(0)<-1>"},
		{"state(0)=1", "state(0)=1"},
		{"state(0)!=1", "!state(0)=1"},
		{"(a=1; b<-2)*", "(a=1; b<-2)*"},
		{"dst=H4", "dst=104"},
		{"a=1; b=2 + c=3", "a=1; b=2 + c=3"}, // '+' binds loosest
	}
	for _, c := range cases {
		got := mustParse(t, c.src).String()
		if got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseVectorSugar(t *testing.T) {
	c := mustParse(t, "state=[0,1]")
	want := stateful.PAnd{L: stateful.PState{Index: 0, Value: 0}, R: stateful.PState{Index: 1, Value: 1}}
	if c.String() != (stateful.CPred{P: want}).String() {
		t.Errorf("vector test: %v", c)
	}
	c = mustParse(t, "(1:1)=>(4:1)<state<-[7,8]>")
	ls, ok := c.(stateful.CLinkState)
	if !ok || len(ls.Sets) != 2 || ls.Sets[0] != (stateful.StateSet{Index: 0, Value: 7}) || ls.Sets[1] != (stateful.StateSet{Index: 1, Value: 8}) {
		t.Errorf("vector assign: %#v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "pt=", "pt<-", "a=1 &", "a=1 & pt<-2", "pt<-2 | a=1",
		"!pt<-1", "(1:1)=>(4:1", "(1:1)=>(4:1)<state>", "state=[]",
		"a=1 b=2", "dst=Hx", "dst=unknown", "@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseEnv(t *testing.T) {
	p, err := NewParser("dst=server")
	if err != nil {
		t.Fatal(err)
	}
	p.Env["server"] = 42
	c, err := p.ParseCmd()
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "dst=42" {
		t.Errorf("env resolution: %v", c)
	}
}

// TestFirewallSourceMatchesAST parses the Figure 9(a) program text and
// checks it behaves identically to the AST in internal/apps.
func TestFirewallSourceMatchesAST(t *testing.T) {
	src := `
# Figure 9(a): stateful firewall
pt=2 & dst=H4; pt<-1; (state=[0]; (1:1)=>(4:1)<state<-[1]>
                      + state!=[0]; (1:1)=>(4:1)); pt<-2
+ pt=2 & dst=H1; state=[1]; pt<-1; (4:1)=>(1:1); pt<-2
`
	parsed := mustParse(t, src)
	ast := apps.Firewall().Prog.Cmd
	for _, k := range []stateful.State{{0}, {1}} {
		pp := stateful.Project(parsed, k)
		pa := stateful.Project(ast, k)
		// Compare semantically on a grid of packets.
		for _, dst := range []int{apps.H(1), apps.H(4), 7} {
			for sw := 1; sw <= 4; sw++ {
				for pt := 1; pt <= 2; pt++ {
					lp := netkat.LocatedPacket{Pkt: netkat.Packet{"dst": dst}, Loc: netkat.Location{Switch: sw, Port: pt}}
					if !netkat.EquivOn(pp, pa, []netkat.LocatedPacket{lp}) {
						t.Fatalf("state %v: parsed and AST differ on %v", k, lp)
					}
				}
			}
		}
		ep, err := stateful.Events(parsed, k)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := stateful.Events(ast, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ep) != len(ea) {
			t.Fatalf("state %v: %d vs %d event edges", k, len(ep), len(ea))
		}
		for i := range ep {
			if ep[i].Key() != ea[i].Key() {
				t.Fatalf("state %v: edge %d differs: %v vs %v", k, i, ep[i], ea[i])
			}
		}
	}
}

// randCmd generates a random command for round-trip testing.
func randCmd(r *rand.Rand, depth int) stateful.Cmd {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return stateful.CPred{P: randPred(r, 0)}
		case 1:
			return stateful.CAssign{Field: []string{"a", "b", "pt"}[r.Intn(3)], Value: r.Intn(4)}
		case 2:
			return stateful.CLink{Src: netkat.Location{Switch: 1 + r.Intn(3), Port: 1 + r.Intn(3)}, Dst: netkat.Location{Switch: 1 + r.Intn(3), Port: 1 + r.Intn(3)}}
		case 3:
			return stateful.CLinkState{
				Src:  netkat.Location{Switch: 1 + r.Intn(3), Port: 1 + r.Intn(3)},
				Dst:  netkat.Location{Switch: 1 + r.Intn(3), Port: 1 + r.Intn(3)},
				Sets: []stateful.StateSet{{Index: r.Intn(2), Value: r.Intn(3)}},
			}
		default:
			return stateful.CPred{P: stateful.PState{Index: r.Intn(2), Value: r.Intn(3)}}
		}
	}
	switch r.Intn(4) {
	case 0:
		return stateful.CUnion{L: randCmd(r, depth-1), R: randCmd(r, depth-1)}
	case 1:
		return stateful.CSeq{L: randCmd(r, depth-1), R: randCmd(r, depth-1)}
	case 2:
		return stateful.CStar{P: randCmd(r, depth-1)}
	default:
		return stateful.CPred{P: randPred(r, depth)}
	}
}

func randPred(r *rand.Rand, depth int) stateful.Pred {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return stateful.PTrue{}
		case 1:
			return stateful.PFalse{}
		case 2:
			return stateful.PState{Index: r.Intn(2), Value: r.Intn(3)}
		default:
			return stateful.PTest{Field: []string{"a", "b", "pt"}[r.Intn(3)], Value: r.Intn(4)}
		}
	}
	switch r.Intn(3) {
	case 0:
		return stateful.PNot{P: randPred(r, depth-1)}
	case 1:
		return stateful.PAnd{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	default:
		return stateful.POr{L: randPred(r, depth-1), R: randPred(r, depth-1)}
	}
}

// TestRoundTrip: parse(print(c)) prints identically to c, for random
// commands.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		c := randCmd(r, 3)
		src := c.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v (from %#v)", src, err, c)
		}
		if got := parsed.String(); got != src {
			t.Fatalf("round trip: %q -> %q", src, got)
		}
	}
}

// TestAppsRoundTrip: every application program round-trips through the
// concrete syntax.
func TestAppsRoundTrip(t *testing.T) {
	for _, a := range apps.All() {
		src := a.Prog.Cmd.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: Parse: %v", a.Name, err)
		}
		if got := parsed.String(); got != src {
			t.Fatalf("%s: round trip changed program:\n%s\n->\n%s", a.Name, src, got)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := Lex("pt<-1; (1:1)=>(4:1)<state(0)<-2> + a!=3 & !b=4 | c=5* # comment\n true")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{
		TokIdent, TokAssign, TokInt, TokSemi,
		TokLParen, TokInt, TokColon, TokInt, TokRParen, TokLink,
		TokLParen, TokInt, TokColon, TokInt, TokRParen,
		TokLAngle, TokIdent, TokLParen, TokInt, TokRParen, TokAssign, TokInt, TokRAngle,
		TokPlus, TokIdent, TokNeq, TokInt, TokAnd, TokNot, TokIdent, TokEq, TokInt,
		TokOr, TokIdent, TokEq, TokInt, TokStar, TokIdent, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "a $ b", "pt <- ~1"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Lex("# full line\na=1 # trailing\n# another\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a, =, 1, EOF
		t.Fatalf("tokens: %v", toks)
	}
}
