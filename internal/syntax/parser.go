package syntax

import (
	"fmt"
	"strconv"

	"eventnet/internal/netkat"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
)

// Parser is a recursive-descent parser for Stateful NetKAT concrete
// syntax. Env maps bare identifiers used as values (e.g. host names) to
// numbers; names of the form H<k> resolve to topo.HostID(k) automatically.
type Parser struct {
	toks []Token
	pos  int
	Env  map[string]int
}

// NewParser builds a parser over the source.
func NewParser(src string) (*Parser, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, Env: map[string]int{}}, nil
}

// Parse parses a complete command (the whole input).
func Parse(src string) (stateful.Cmd, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	return p.ParseCmd()
}

// ParseProgram parses a command and pairs it with an initial state.
func ParseProgram(src string, init []int) (stateful.Program, error) {
	c, err := Parse(src)
	if err != nil {
		return stateful.Program{}, err
	}
	return stateful.Program{Cmd: c, Init: stateful.State(init)}, nil
}

// ParseCmd parses a command and requires the input to be fully consumed.
func (p *Parser) ParseCmd() (stateful.Cmd, error) {
	n, err := p.union()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, p.errAt(t, "trailing input")
	}
	return n.toCmd(), nil
}

// node is either a predicate or a command during parsing; predicates are
// promoted to commands (CPred) when combined with command operators.
type node struct {
	pred stateful.Pred
	cmd  stateful.Cmd
}

func (n node) toCmd() stateful.Cmd {
	if n.cmd != nil {
		return n.cmd
	}
	return stateful.CPred{P: n.pred}
}

func (n node) isPred() bool { return n.cmd == nil }

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peekAt(k int) Token {
	if p.pos+k >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+k]
}
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.next()
	if t.Kind != k {
		return t, p.errAt(t, "expected %v", k)
	}
	return t, nil
}

func (p *Parser) errAt(t Token, format string, args ...any) error {
	return fmt.Errorf("syntax: offset %d (near %q): %s", t.Pos, t.Text, fmt.Sprintf(format, args...))
}

// union := seq ('+' seq)*
func (p *Parser) union() (node, error) {
	left, err := p.seq()
	if err != nil {
		return node{}, err
	}
	for p.peek().Kind == TokPlus {
		p.next()
		right, err := p.seq()
		if err != nil {
			return node{}, err
		}
		// '+' is command union even over tests; predicate disjunction is
		// written '|' (Figure 4 keeps a∨b and p+q distinct).
		left = node{cmd: stateful.CUnion{L: left.toCmd(), R: right.toCmd()}}
	}
	return left, nil
}

// seq := or (';' or)*
func (p *Parser) seq() (node, error) {
	left, err := p.or()
	if err != nil {
		return node{}, err
	}
	for p.peek().Kind == TokSemi {
		p.next()
		right, err := p.or()
		if err != nil {
			return node{}, err
		}
		left = node{cmd: stateful.CSeq{L: left.toCmd(), R: right.toCmd()}}
	}
	return left, nil
}

// or := and ('|' and)*
func (p *Parser) or() (node, error) {
	left, err := p.and()
	if err != nil {
		return node{}, err
	}
	for p.peek().Kind == TokOr {
		t := p.next()
		right, err := p.and()
		if err != nil {
			return node{}, err
		}
		if !left.isPred() || !right.isPred() {
			return node{}, p.errAt(t, "'|' requires predicate operands")
		}
		left = node{pred: stateful.POr{L: left.pred, R: right.pred}}
	}
	return left, nil
}

// and := postfix ('&' postfix)*
func (p *Parser) and() (node, error) {
	left, err := p.postfix()
	if err != nil {
		return node{}, err
	}
	for p.peek().Kind == TokAnd {
		t := p.next()
		right, err := p.postfix()
		if err != nil {
			return node{}, err
		}
		if !left.isPred() || !right.isPred() {
			return node{}, p.errAt(t, "'&' requires predicate operands")
		}
		left = node{pred: stateful.PAnd{L: left.pred, R: right.pred}}
	}
	return left, nil
}

// postfix := atom ('*')*
func (p *Parser) postfix() (node, error) {
	n, err := p.atom()
	if err != nil {
		return node{}, err
	}
	for p.peek().Kind == TokStar {
		p.next()
		n = node{cmd: stateful.CStar{P: n.toCmd()}}
	}
	return n, nil
}

// atom parses the leaf forms.
func (p *Parser) atom() (node, error) {
	t := p.peek()
	switch t.Kind {
	case TokNot:
		p.next()
		operand, err := p.atom() // '!' binds tighter than '*'
		if err != nil {
			return node{}, err
		}
		if !operand.isPred() {
			return node{}, p.errAt(t, "'!' requires a predicate operand")
		}
		return node{pred: stateful.PNot{P: operand.pred}}, nil
	case TokIdent:
		switch t.Text {
		case "true":
			p.next()
			return node{pred: stateful.PTrue{}}, nil
		case "false":
			p.next()
			return node{pred: stateful.PFalse{}}, nil
		case "state":
			return p.stateAtom()
		default:
			return p.fieldAtom()
		}
	case TokLParen:
		if p.looksLikeLink() {
			return p.link()
		}
		p.next()
		inner, err := p.union()
		if err != nil {
			return node{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return node{}, err
		}
		return inner, nil
	default:
		return node{}, p.errAt(t, "expected a test, assignment, link, or '('")
	}
}

// fieldAtom := IDENT ('=' | '!=' | '<-') value
func (p *Parser) fieldAtom() (node, error) {
	name := p.next()
	op := p.next()
	switch op.Kind {
	case TokEq:
		v, err := p.value()
		if err != nil {
			return node{}, err
		}
		return node{pred: stateful.PTest{Field: name.Text, Value: v}}, nil
	case TokNeq:
		v, err := p.value()
		if err != nil {
			return node{}, err
		}
		return node{pred: stateful.PNot{P: stateful.PTest{Field: name.Text, Value: v}}}, nil
	case TokAssign:
		v, err := p.value()
		if err != nil {
			return node{}, err
		}
		return node{cmd: stateful.CAssign{Field: name.Text, Value: v}}, nil
	default:
		return node{}, p.errAt(op, "expected '=', '!=', or '<-' after field %q", name.Text)
	}
}

// stateAtom := 'state' '(' INT ')' ('='|'!=') INT
//
//	| 'state' ('='|'!=') '[' INT (',' INT)* ']'
func (p *Parser) stateAtom() (node, error) {
	p.next() // 'state'
	if p.peek().Kind == TokLParen {
		p.next()
		idx, err := p.expect(TokInt)
		if err != nil {
			return node{}, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return node{}, err
		}
		op := p.next()
		v, err := p.expect(TokInt)
		if err != nil {
			return node{}, err
		}
		switch op.Kind {
		case TokEq:
			return node{pred: stateful.PState{Index: idx.Int, Value: v.Int}}, nil
		case TokNeq:
			return node{pred: stateful.PNot{P: stateful.PState{Index: idx.Int, Value: v.Int}}}, nil
		default:
			return node{}, p.errAt(op, "expected '=' or '!=' after state(%d)", idx.Int)
		}
	}
	op := p.next()
	if op.Kind != TokEq && op.Kind != TokNeq {
		return node{}, p.errAt(op, "expected '=', '!=', or '(' after 'state'")
	}
	vals, err := p.vector()
	if err != nil {
		return node{}, err
	}
	pred := stateful.VecPred(vals...)
	if op.Kind == TokNeq {
		pred = stateful.PNot{P: pred}
	}
	return node{pred: pred}, nil
}

// vector := '[' INT (',' INT)* ']'
func (p *Parser) vector() ([]int, error) {
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	var vals []int
	for {
		v, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v.Int)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return vals, nil
}

// looksLikeLink reports whether the upcoming tokens start a link:
// '(' INT ':' INT ')' '=>'.
func (p *Parser) looksLikeLink() bool {
	return p.peekAt(0).Kind == TokLParen &&
		p.peekAt(1).Kind == TokInt &&
		p.peekAt(2).Kind == TokColon &&
		p.peekAt(3).Kind == TokInt &&
		p.peekAt(4).Kind == TokRParen &&
		p.peekAt(5).Kind == TokLink
}

// link := loc '=>' loc ['<' stateSets '>']
func (p *Parser) link() (node, error) {
	src, err := p.loc()
	if err != nil {
		return node{}, err
	}
	if _, err := p.expect(TokLink); err != nil {
		return node{}, err
	}
	dst, err := p.loc()
	if err != nil {
		return node{}, err
	}
	if p.peek().Kind != TokLAngle {
		return node{cmd: stateful.CLink{Src: src, Dst: dst}}, nil
	}
	p.next()
	sets, err := p.stateSets()
	if err != nil {
		return node{}, err
	}
	if _, err := p.expect(TokRAngle); err != nil {
		return node{}, err
	}
	return node{cmd: stateful.CLinkState{Src: src, Dst: dst, Sets: sets}}, nil
}

// loc := '(' INT ':' INT ')'
func (p *Parser) loc() (netkat.Location, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return netkat.Location{}, err
	}
	sw, err := p.expect(TokInt)
	if err != nil {
		return netkat.Location{}, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return netkat.Location{}, err
	}
	pt, err := p.expect(TokInt)
	if err != nil {
		return netkat.Location{}, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return netkat.Location{}, err
	}
	return netkat.Location{Switch: sw.Int, Port: pt.Int}, nil
}

// stateSets := stateSet (',' stateSet)*
// stateSet  := 'state' '(' INT ')' '<-' INT | 'state' '<-' vector
func (p *Parser) stateSets() ([]stateful.StateSet, error) {
	var out []stateful.StateSet
	for {
		kw, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if kw.Text != "state" {
			return nil, p.errAt(kw, "expected 'state' in link annotation")
		}
		if p.peek().Kind == TokLParen {
			p.next()
			idx, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			v, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			out = append(out, stateful.StateSet{Index: idx.Int, Value: v.Int})
		} else {
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			vals, err := p.vector()
			if err != nil {
				return nil, err
			}
			out = append(out, stateful.VecSets(vals...)...)
		}
		if p.peek().Kind != TokComma {
			return out, nil
		}
		p.next()
	}
}

// value resolves an integer or symbolic value: H<k> means host k's
// address; other identifiers are looked up in Env.
func (p *Parser) value() (int, error) {
	t := p.next()
	switch t.Kind {
	case TokInt:
		return t.Int, nil
	case TokIdent:
		if v, ok := p.Env[t.Text]; ok {
			return v, nil
		}
		if len(t.Text) > 1 && t.Text[0] == 'H' {
			if k, err := strconv.Atoi(t.Text[1:]); err == nil {
				return topo.HostID(k), nil
			}
		}
		return 0, p.errAt(t, "unknown value identifier %q", t.Text)
	default:
		return 0, p.errAt(t, "expected a value")
	}
}
