// Package eventnet is a Go implementation of "Event-Driven Network
// Programming" (McClurg, Hojjat, Foster, Černý; PLDI 2016): Stateful
// NetKAT programs compiled through event-driven transition systems (ETSs)
// and network event structures (NESs) to per-switch flow tables, executed
// by a provably-correct tag-and-digest runtime, and checked against the
// paper's event-driven consistent-update semantics.
//
// The root package is a facade over the building blocks in internal/:
//
//	syntax   — concrete Stateful NetKAT syntax (lexer, parser, printer)
//	stateful — Stateful NetKAT AST, projection ⟦p⟧k, event extraction
//	netkat   — static NetKAT: packets, predicates, policies, evaluator
//	nkc      — NetKAT compiler to prioritized flow tables, with two
//	           backends: forwarding decision diagrams (default) and the
//	           DNF/strand reference (see docs/ARCHITECTURE.md)
//	ets      — event-driven transition systems and their checks
//	nes      — network event structures (con, ⊢, g, locality)
//	trace    — the Definition 2/6 consistency oracle
//	runtime  — the Figure 7 operational semantics, executable
//	sim      — timed simulator with tagged and uncoordinated planes
//	optimize — the Section 5.3 rule-sharing trie
//	apps     — the paper's five applications and the ring
//
// A typical use:
//
//	app := eventnet.Firewall()
//	sys, err := eventnet.Compile(app.Prog, app.Topo)
//	m := sys.NewMachine(1, false)
//	m.Inject("H1", netkat.Packet{"dst": 104})
//	m.RunToQuiescence()
//	err = sys.CheckTrace(m.NetTrace())
package eventnet

import (
	"eventnet/internal/apps"
	"eventnet/internal/ets"
	"eventnet/internal/nes"
	"eventnet/internal/runtime"
	"eventnet/internal/sim"
	"eventnet/internal/stateful"
	"eventnet/internal/topo"
	"eventnet/internal/trace"
)

// Program is a Stateful NetKAT program with its initial state vector.
type Program = stateful.Program

// Topology is a network of switches, hosts, and links.
type Topology = topo.Topology

// App bundles a program with its topology.
type App = apps.App

// Machine is the Figure 7 abstract machine executing a compiled system
// (see System.NewMachine).
type Machine = runtime.Machine

// System is a compiled event-driven network program: the ETS extracted
// from the Stateful NetKAT program and the NES that implements it.
type System struct {
	ETS *ets.ETS
	NES *nes.NES
}

// Compile builds the full pipeline of Section 3: reachable states are
// projected (Figure 5) and compiled to flow tables, event edges are
// extracted (Figure 6), the ETS conditions of Section 3.1 are checked,
// and the NES is constructed and verified locally determined.
//
// Construction runs on the incremental sharded engine: exploration and
// compilation overlap on a work-stealing pool, and per-state
// configurations compile as deltas — only sub-policies whose state
// guards changed re-enter FDD translation, with unchanged strands and
// tables reused across states and workers (see docs/PIPELINE.md). The
// result is deterministic for any worker count.
func Compile(p Program, t *Topology) (*System, error) {
	e, err := ets.Build(p, t)
	if err != nil {
		return nil, err
	}
	n, err := e.ToNES()
	if err != nil {
		return nil, err
	}
	if _, err := n.LocallyDetermined(); err != nil {
		return nil, err
	}
	return &System{ETS: e, NES: n}, nil
}

// NewMachine builds a Figure 7 abstract machine executing the system
// under a seeded random scheduler. ctrlAssist enables the optional
// controller broadcast rules.
func (s *System) NewMachine(seed int64, ctrlAssist bool) *runtime.Machine {
	return runtime.New(s.NES, s.ETS.Topo, seed, ctrlAssist)
}

// NewSim builds a timed simulation of the system. kind selects the
// correct (tagged) plane or the uncoordinated baseline.
func (s *System) NewSim(kind sim.PlaneKind, p sim.Params, seed int64) *sim.Sim {
	return sim.New(s.ETS.Topo, sim.NewPlane(kind, s.NES), p, seed)
}

// CheckTrace verifies a recorded network trace against the system's NES
// per Definition 6 (the paper's event-driven consistency).
func (s *System) CheckTrace(nt *trace.NetTrace) error {
	return trace.CheckNES(nt, s.NES, s.ETS.Topo.HostLocs())
}

// TotalRules returns the number of flow-table rules across all
// configurations and switches (the paper's in-text metric).
func (s *System) TotalRules() int {
	n := 0
	for _, c := range s.NES.Configs {
		n += c.Tables.TotalRules()
	}
	return n
}

// The paper's applications (Figures 8-9) re-exported for convenience.
var (
	Firewall       = apps.Firewall
	LearningSwitch = apps.LearningSwitch
	Authentication = apps.Authentication
	BandwidthCap   = apps.BandwidthCap
	IDS            = apps.IDS
	Ring           = apps.Ring
)
