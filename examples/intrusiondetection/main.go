// Intrusion detection (Figure 9e): all traffic flows freely until H4
// scans H1 and then H2 in order, at which point access to H3 is revoked.
// This example runs the Figure 7 abstract machine under many random
// schedules and verifies every execution against the Definition 6 oracle
// — the empirical content of Theorem 1.
package main

import (
	"fmt"
	"log"

	"eventnet"
	"eventnet/internal/apps"
	"eventnet/internal/netkat"
)

func main() {
	app := eventnet.IDS()
	sys, err := eventnet.Compile(app.Prog, app.Topo)
	if err != nil {
		log.Fatal(err)
	}
	ld, _ := sys.NES.LocallyDetermined()
	fmt.Printf("compiled %s: locally determined = %v\n", app.Name, ld)

	// Scripted run: scan H1 then H2 (with replies carrying the digests
	// back to the hub), then try H3.
	m := sys.NewMachine(7, false)
	send := func(host string, dst int) {
		if err := m.Inject(host, netkat.Packet{apps.FieldDst: dst}); err != nil {
			log.Fatal(err)
		}
		if err := m.RunToQuiescence(); err != nil {
			log.Fatal(err)
		}
	}
	send("H4", apps.H(3))
	fmt.Printf("before scan: H3 received %d\n", len(m.DeliveredTo("H3")))
	send("H4", apps.H(1))
	send("H1", apps.H(4)) // reply: s4 hears about the first scan event
	send("H4", apps.H(2))
	send("H2", apps.H(4)) // reply: s4 hears about the second
	send("H4", apps.H(3))
	fmt.Printf("after scan:  H3 received %d (unchanged — access revoked)\n", len(m.DeliveredTo("H3")))
	if err := sys.CheckTrace(m.NetTrace()); err != nil {
		log.Fatalf("oracle: %v", err)
	}

	// Random schedules: every interleaving must satisfy Definition 6.
	checked := 0
	for seed := int64(1); seed <= 50; seed++ {
		m := sys.NewMachine(seed, seed%2 == 0)
		for _, dst := range []int{apps.H(3), apps.H(1), apps.H(2), apps.H(3)} {
			if err := m.Inject("H4", netkat.Packet{apps.FieldDst: dst}); err != nil {
				log.Fatal(err)
			}
			for i := int64(0); i < seed%5; i++ {
				m.Step()
			}
		}
		if err := m.RunToQuiescence(); err != nil {
			log.Fatal(err)
		}
		if err := sys.CheckTrace(m.NetTrace()); err != nil {
			log.Fatalf("seed %d: consistency violated: %v", seed, err)
		}
		checked++
	}
	fmt.Printf("verified %d random-schedule executions against Definition 6\n", checked)
}
