// Bandwidth cap (Figure 9d): H1's access to H4 is metered — after n
// request packets have crossed s4, the reply path closes. The correct
// implementation admits exactly n exchanges (Figure 14a); the
// uncoordinated baseline overshoots the cap (Figure 14b).
package main

import (
	"flag"
	"fmt"
	"log"

	"eventnet"
	"eventnet/internal/sim"
)

func main() {
	capN := flag.Int("cap", 10, "bandwidth cap n")
	extra := flag.Int("extra", 8, "pings sent beyond the cap")
	flag.Parse()

	app := eventnet.BandwidthCap(*capN)
	sys, err := eventnet.Compile(app.Prog, app.Topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d configurations in a renamed-event chain of %d events\n",
		app.Name, len(sys.NES.Configs), len(sys.NES.Events))

	for _, kind := range []sim.PlaneKind{sim.PlaneKindTagged, sim.PlaneKindUncoord} {
		name := "correct"
		if kind == sim.PlaneKindUncoord {
			name = "uncoordinated"
		}
		p := sim.DefaultParams()
		p.InstallDelay = 2.0
		s := sys.NewSim(kind, p, 1)
		sim.EnableEcho(s, "H4")
		st := sim.StartPings(s, "H1", "H4", 0.5, 0.25, *capN+*extra, 0)
		s.Run(15)
		fmt.Printf("%-14s: %d/%d pings succeeded (cap %d)\n", name, st.Succeeded(), len(st.Pings), *capN)
	}
}
