// Authentication (Figure 9c): untrusted H4 gains access to H3 only after
// probing H1 and then H2, in that order. The example runs the timed
// simulator under both the correct tagged plane and the uncoordinated
// baseline and prints the two timelines side by side — Figure 13 of the
// paper.
package main

import (
	"fmt"
	"log"

	"eventnet"
	"eventnet/internal/sim"
)

func run(kind sim.PlaneKind) []string {
	app := eventnet.Authentication()
	sys, err := eventnet.Compile(app.Prog, app.Topo)
	if err != nil {
		log.Fatal(err)
	}
	p := sim.DefaultParams()
	p.InstallDelay = 2.0
	s := sys.NewSim(kind, p, 1)
	for _, h := range []string{"H1", "H2", "H3", "H4"} {
		sim.EnableEcho(s, h)
	}
	script := []struct {
		dst   string
		start float64
	}{
		{"H3", 0.5}, {"H2", 1.5}, {"H1", 2.5}, {"H3", 3.5}, {"H2", 4.5}, {"H3", 5.5},
	}
	var stats []*sim.PingStats
	for i, sc := range script {
		stats = append(stats, sim.StartPings(s, "H4", sc.dst, sc.start, 0.25, 2, 1000*(i+1)))
	}
	s.Run(12)

	var lines []string
	for i, st := range stats {
		for _, pg := range st.Pings {
			mark := "drop"
			if pg.Replied {
				mark = "OK"
			}
			lines = append(lines, fmt.Sprintf("t=%4.2fs H4->%s %s", pg.SentAt, script[i].dst, mark))
		}
	}
	return lines
}

func main() {
	correct := run(sim.PlaneKindTagged)
	uncoord := run(sim.PlaneKindUncoord)
	fmt.Println("correct (event-driven consistent)   | uncoordinated baseline")
	for i := range correct {
		fmt.Printf("%-36s | %s\n", correct[i], uncoord[i])
	}
	fmt.Println("\nH3 opens only after H1 then H2 were probed in order; the baseline")
	fmt.Println("lags each transition by the controller's install delay.")
}
