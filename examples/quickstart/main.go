// Quickstart: compile the paper's stateful firewall (Figure 9a), execute
// it on the Figure 7 abstract machine, watch the event-driven update
// happen, and verify the recorded trace against the event-driven
// consistency oracle (Definition 6).
package main

import (
	"fmt"
	"log"

	"eventnet"
	"eventnet/internal/apps"
	"eventnet/internal/netkat"
)

func main() {
	app := eventnet.Firewall()
	sys, err := eventnet.Compile(app.Prog, app.Topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d states, %d events, %d flow rules\n",
		app.Name, len(sys.ETS.Vertices), len(sys.NES.Events), sys.TotalRules())
	fmt.Print(sys.NES)

	m := sys.NewMachine(1, false)
	step := func(host string, dst int, label string) {
		if err := m.Inject(host, netkat.Packet{apps.FieldDst: dst}); err != nil {
			log.Fatal(err)
		}
		if err := m.RunToQuiescence(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s H1 got %d, H4 got %d, s4 knows %v\n",
			label, len(m.DeliveredTo("H1")), len(m.DeliveredTo("H4")), m.SwitchView(4))
	}

	step("H4", apps.H(1), "H4->H1 (before event):")
	step("H1", apps.H(4), "H1->H4 (fires event):")
	step("H4", apps.H(1), "H4->H1 (after event):")

	if err := sys.CheckTrace(m.NetTrace()); err != nil {
		log.Fatalf("consistency violated: %v", err)
	}
	fmt.Println("trace verified: correct per event-driven consistent update (Definition 6)")
}
