// Ring (Section 5.2): hosts on opposite sides of a switch ring; a signal
// packet flips forwarding from clockwise to counterclockwise. The example
// measures the two quantities of Figure 16: bulk-transfer goodput with
// and without the tag/digest machinery, and the time for every switch to
// discover the event via digest gossip versus controller broadcast.
package main

import (
	"flag"
	"fmt"
	"log"

	"eventnet"
	"eventnet/internal/apps"
	"eventnet/internal/netkat"
	"eventnet/internal/sim"
)

func main() {
	diameter := flag.Int("diameter", 4, "ring diameter (switches between H1 and H2)")
	flag.Parse()

	app := eventnet.Ring(*diameter)
	sys, err := eventnet.Compile(app.Prog, app.Topo)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 16a: goodput with and without tagging overhead.
	goodput := func(tagBytes int, extraProc float64) float64 {
		pl := sim.NewTaggedPlane(sys.NES)
		pl.TagBytes = tagBytes
		pl.ExtraProc = extraProc
		p := sim.DefaultParams()
		p.SwitchProcTime = 120e-6 // CPU-bound software switches
		s := sim.New(app.Topo, pl, p, 1)
		b := sim.StartBulk(s, "H1", "H2", 0.1, 2.0, 1.05/p.SwitchProcTime, 0)
		s.Run(3)
		return b.Goodput()
	}
	ref := goodput(0, 0)
	tagged := goodput(12, 0.05)
	fmt.Printf("diameter %d goodput: reference %.2f MB/s, tagged %.2f MB/s (%.1f%% overhead)\n",
		*diameter, ref/1e6, tagged/1e6, 100*(ref-tagged)/ref)

	// Figure 16b: event discovery, gossip vs controller broadcast.
	for _, assist := range []bool{false, true} {
		pl := sim.NewTaggedPlane(sys.NES)
		p := sim.DefaultParams()
		p.CtrlAssist = assist
		s := sim.New(app.Topo, pl, p, 1)
		sim.EnableEcho(s, "H2")
		sim.StartPings(s, "H1", "H2", 0, 0.05, 400, 0)
		s.At(1.0, func() {
			s.Send("H1", netkat.Packet{apps.FieldSig: 1, sim.FieldSrc: apps.H(1)})
		})
		s.Run(25)
		max, sum, cnt := 0.0, 0.0, 0
		for _, sw := range app.Topo.Switches {
			if at, ok := pl.DiscoveryTime(sw, 0); ok {
				d := at - 1.0
				sum += d
				cnt++
				if d > max {
					max = d
				}
			}
		}
		mode := "gossip only"
		if assist {
			mode = "with controller"
		}
		if cnt == 0 {
			fmt.Printf("discovery (%s): event never spread\n", mode)
			continue
		}
		fmt.Printf("discovery (%s): %d/%d switches, max %.1f ms, avg %.1f ms\n",
			mode, cnt, len(app.Topo.Switches), 1000*max, 1000*sum/float64(cnt))
	}
}
