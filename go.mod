module eventnet

go 1.24
